// Package lockcheck enforces the `// guarded by <mu>` field convention
// on the control-flow graph. A struct field whose doc or trailing
// comment says "guarded by mu" names a sibling sync.Mutex or
// sync.RWMutex field; every access to the guarded field must then occur
// with that mutex provably held:
//
//   - guarded access: on every CFG path reaching the access, a Lock (or
//     RLock) on the same receiver's mutex precedes it without an
//     intervening Unlock. The proof is a must-held forward dataflow pass
//     (set intersection at joins), so an access reachable by even one
//     unlocked path is flagged.
//
//   - leaked lock: a mutex still (possibly) held on some path into the
//     function's exit, with no deferred Unlock to release it — the
//     classic missing-unlock-on-early-return bug. May-held dataflow
//     (set union at joins).
//
//   - double lock: an exclusive Lock while the same mutex is already
//     provably held on every path — a guaranteed self-deadlock.
//
//   - lock copied by value: a receiver or parameter whose type contains
//     a sync.Mutex, RWMutex, WaitGroup, Once or Cond by value; the copy
//     has its own lock state and silently splits the critical section.
//
// Closure bodies are separate scopes with an empty entry lock-set: a
// closure runs on its own schedule, so it must take the lock itself (see
// memo.Do's panic-recovery defer). Single-threaded phases that touch
// guarded fields without the lock — a constructor filling fields before
// the value escapes is recognized automatically; anything subtler takes
// a //lint:allow lockcheck with the reason, or better, just takes the
// uncontended lock.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"coremap/internal/analysis"
	"coremap/internal/analysis/cfg"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "enforces `// guarded by <mu>` field comments on the CFG: accesses with the " +
		"mutex provably held, no lock leaked past an early return, no double lock, " +
		"no mutex copied by value",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package; commands own their process lifetime",
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: single-threaded batch tooling run under the go test harness, not pipeline code",
		},
	},
}

// guardedRe extracts the mutex name from a field comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo records that a field is guarded by the named sibling mutex.
type guardInfo struct {
	mu string // sibling mutex field name
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopyByValue(pass, fd.Recv)
			if fd.Type.Params != nil {
				checkCopyByValue(pass, fd.Type.Params)
			}
			if fd.Body == nil {
				continue
			}
			checkBody(pass, guards, fd.Body, constructedBases(pass, fd.Body, guards))
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if lit.Type.Params != nil {
						checkCopyByValue(pass, lit.Type.Params)
					}
					checkBody(pass, guards, lit.Body, constructedBases(pass, lit.Body, guards))
				}
				return true
			})
		}
	}
	return nil
}

// collectGuards parses every `// guarded by <mu>` field comment in the
// package and maps each guarded field object to its mutex's name.
// Comments naming a missing or non-mutex sibling are reported: a guard
// annotation that cannot be enforced is worse than none.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardComment(field)
				if !ok {
					continue
				}
				if !hasMutexSibling(pass, st, mu) {
					pass.Reportf(field.Pos(),
						"guarded-by comment names %q, which is not a sync.Mutex or sync.RWMutex field of this struct", mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.ObjectOf(name); obj != nil {
						guards[obj] = guardInfo{mu: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardComment extracts the mutex name from the field's doc or trailing
// comment, if it carries a guarded-by annotation.
func guardComment(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// hasMutexSibling reports whether st declares a field named mu whose
// type is sync.Mutex or sync.RWMutex (by value or pointer).
func hasMutexSibling(pass *analysis.Pass, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			t := pass.TypeOf(field.Type)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if isMutex(t) {
				return true
			}
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	return analysis.IsNamedType(t, "sync", "Mutex") || analysis.IsNamedType(t, "sync", "RWMutex")
}

// constructedBases returns the base identifiers that are in their
// construction phase for this body: locals initialized from a composite
// literal (x := T{...} or x := &T{...}). Until such a value is shared,
// its fields are owned by this goroutine and need no lock; constructors
// like memo.NewGroup fill guarded maps this way.
func constructedBases(pass *analysis.Pass, body *ast.BlockStmt, guards map[types.Object]guardInfo) map[types.Object]bool {
	if len(guards) == 0 {
		return nil
	}
	bases := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				rhs = ast.Unparen(ue.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := pass.ObjectOf(id); obj != nil {
				bases[obj] = true
			}
		}
		return true
	})
	return bases
}

// eventKind discriminates the per-block event stream.
type eventKind int

const (
	evAccess eventKind = iota // read/write of a guarded field
	evLock                    // Lock or RLock
	evUnlock                  // Unlock or RUnlock
)

// event is one lock-relevant occurrence inside a basic block, in source
// order.
type event struct {
	kind      eventKind
	pos       token.Pos
	expr      string // mutex expr for lock/unlock; required mutex expr for access
	field     string // accessed field name (evAccess)
	exclusive bool   // Lock vs RLock (evLock)
	deferred  bool   // inside a defer statement: runs at return
}

// checkBody runs the three CFG checks over one function or closure body.
func checkBody(pass *analysis.Pass, guards map[types.Object]guardInfo, body *ast.BlockStmt, constructed map[types.Object]bool) {
	if !hasLockEvents(pass, guards, body) {
		return
	}
	g := cfg.New(body)
	byBlock := make([][]event, len(g.Blocks))
	for _, blk := range g.Blocks {
		var evs []event
		for _, n := range blk.Nodes {
			collectEvents(pass, guards, constructed, n, &evs, false)
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		byBlock[blk.Index] = evs
	}

	reachable := reachableBlocks(g)
	transfer := func(blk *cfg.Block, in map[string]bool) map[string]bool {
		out := cloneSet(in)
		for _, ev := range byBlock[blk.Index] {
			if ev.deferred {
				continue
			}
			switch ev.kind {
			case evLock:
				if out == nil {
					out = make(map[string]bool)
				}
				out[ev.expr] = true
			case evUnlock:
				delete(out, ev.expr)
			}
		}
		return out
	}

	// Must-held: intersection at joins. Guarded accesses and double
	// locks are judged against this state.
	mustIn := cfg.Forward(g, nil, intersectSets, equalSets, transfer)
	for _, blk := range g.Blocks {
		if !reachable[blk.Index] {
			continue
		}
		state := cloneSet(mustIn[blk.Index])
		for _, ev := range byBlock[blk.Index] {
			switch ev.kind {
			case evAccess:
				if !state[ev.expr] {
					pass.Reportf(ev.pos,
						"%s is accessed without holding %s (field is marked `guarded by`): lock it, or take the uncontended lock in single-threaded phases",
						ev.field, ev.expr)
				}
			case evLock:
				if ev.deferred {
					continue
				}
				if ev.exclusive && state[ev.expr] {
					pass.Reportf(ev.pos, "%s.Lock while %s is already held: guaranteed self-deadlock", ev.expr, ev.expr)
				}
				if state == nil {
					state = make(map[string]bool)
				}
				state[ev.expr] = true
			case evUnlock:
				if !ev.deferred {
					delete(state, ev.expr)
				}
			}
		}
	}

	// May-held: union at joins. A mutex possibly held at Exit with no
	// deferred unlock is a leak on some return path.
	mayIn := cfg.Forward(g, nil, unionSets, equalSets, transfer)
	leaked := cloneSet(mayIn[g.Exit.Index])
	for _, d := range g.Defers {
		if expr, _, ok := lockOp(pass, d.Call); ok {
			delete(leaked, expr)
		}
	}
	for expr := range leaked {
		pos := firstLockPos(g, byBlock, expr)
		if pos != token.NoPos {
			pass.Reportf(pos,
				"%s may still be held when the function returns: unlock on every path or defer the unlock", expr)
		}
	}
}

// hasLockEvents cheaply pre-scans a body for any lock operation or
// guarded-field access, so lock-free functions skip the CFG build.
func hasLockEvents(pass *analysis.Pass, guards map[types.Object]guardInfo, body *ast.BlockStmt) bool {
	found := false
	analysis.InspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, _, ok := lockOp(pass, n); ok {
				found = true
			}
		case *ast.SelectorExpr:
			if _, ok := guards[pass.ObjectOf(n.Sel)]; ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// collectEvents appends the lock events under one CFG node, in source
// order, to evs. FuncLit subtrees are skipped (separate scopes); events
// under a defer statement are marked deferred — the call runs at return,
// though its arguments are evaluated (and so access-checked) in place.
func collectEvents(pass *analysis.Pass, guards map[types.Object]guardInfo, constructed map[types.Object]bool, n ast.Node, evs *[]event, deferred bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false // separate scope, checked on its own
		case *ast.DeferStmt:
			if !deferred {
				collectEvents(pass, guards, constructed, c.Call, evs, true)
				return false
			}
		case *ast.CallExpr:
			if expr, exclusive, ok := lockOp(pass, c); ok {
				kind := evLock
				if sel := ast.Unparen(c.Fun).(*ast.SelectorExpr); strings.HasPrefix(sel.Sel.Name, "Unlock") || strings.HasPrefix(sel.Sel.Name, "RUnlock") {
					kind = evUnlock
				}
				*evs = append(*evs, event{kind: kind, pos: c.Pos(), expr: expr, exclusive: exclusive, deferred: deferred})
			}
		case *ast.SelectorExpr:
			obj := pass.ObjectOf(c.Sel)
			gi, ok := guards[obj]
			if !ok {
				return true
			}
			if root := rootIdent(c.X); root != nil && constructed[pass.ObjectOf(root)] {
				return true // construction phase: value not shared yet
			}
			*evs = append(*evs, event{
				kind:  evAccess,
				pos:   c.Pos(),
				expr:  types.ExprString(c.X) + "." + gi.mu,
				field: types.ExprString(c),
			})
		}
		return true
	})
}

// lockOp recognizes a Lock/RLock/Unlock/RUnlock call on a sync.Mutex or
// sync.RWMutex receiver, returning the receiver's expression text and
// whether the operation is the exclusive Lock.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (expr string, exclusive bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", false, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if !isMutex(t) {
		return "", false, false
	}
	return types.ExprString(sel.X), sel.Sel.Name == "Lock", true
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// firstLockPos finds the earliest Lock/RLock event on expr in the body.
func firstLockPos(g *cfg.Graph, byBlock [][]event, expr string) token.Pos {
	best := token.NoPos
	for _, blk := range g.Blocks {
		for _, ev := range byBlock[blk.Index] {
			if ev.kind == evLock && ev.expr == expr && (best == token.NoPos || ev.pos < best) {
				best = ev.pos
			}
		}
	}
	return best
}

// reachableBlocks marks every block reachable from Entry, so unreachable
// code (whose dataflow state is vacuous) is not checked.
func reachableBlocks(g *cfg.Graph) []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*cfg.Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// --- set lattice helpers -------------------------------------------------

func cloneSet(s map[string]bool) map[string]bool {
	if len(s) == 0 {
		return nil
	}
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectSets(a, b map[string]bool) map[string]bool {
	var out map[string]bool
	for k := range a {
		if b[k] {
			if out == nil {
				out = make(map[string]bool)
			}
			out[k] = true
		}
	}
	return out
}

func unionSets(a, b map[string]bool) map[string]bool {
	if len(a) == 0 {
		return cloneSet(b)
	}
	out := cloneSet(a)
	for k := range b {
		if out == nil {
			out = make(map[string]bool)
		}
		out[k] = true
	}
	return out
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// checkCopyByValue flags receivers and parameters whose type carries a
// sync lock by value: the copy has independent lock state, so the
// critical sections silently stop excluding each other.
func checkCopyByValue(pass *analysis.Pass, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if name := lockInside(t, 0); name != "" {
			pass.Reportf(field.Pos(),
				"%s is passed by value but contains sync.%s: the copy has its own lock state; use a pointer",
				t.String(), name)
		}
	}
}

// lockInside returns the name of the first sync lock type found inside t
// by value ("" if none). Pointers stop the search: sharing a lock
// through a pointer is exactly the correct pattern.
func lockInside(t types.Type, depth int) string {
	if depth > 8 || t == nil {
		return ""
	}
	for _, name := range []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond"} {
		if analysis.IsNamedType(t, "sync", name) {
			return name
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockInside(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInside(u.Elem(), depth+1)
	}
	return ""
}
