package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		want    string
		ok      bool
	}{
		{"//lint:allow detrange reason here", "detrange reason here", true},
		{"// lint:allow ctxflow root context", "ctxflow root context", true},
		{"//lint:allow", "", true}, // malformed, but recognized as a directive
		{"//lint:allowance is not a directive", "", false},
		{"// regular comment", "", false},
		{"/* lint:allow detrange block */", "", false},
		{"//  lint:allow   hostsafe   padded   fields  ", "hostsafe   padded   fields", true},
	}
	for _, c := range cases {
		got, ok := directiveText(c.comment)
		if ok != c.ok || got != c.want {
			t.Errorf("directiveText(%q) = (%q, %v), want (%q, %v)", c.comment, got, ok, c.want, c.ok)
		}
	}
}

const allowSrc = `package p

//lint:allow detrange keys are interchangeable
var a = 1

var b = 2 //lint:allow hostsafe simulator-only path

//lint:allow cmerrcheck
var c = 3

//lint:allow
var d = 4
`

func parseAllowFixture(t *testing.T) (*token.FileSet, []*Allow, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_fixture.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, malformed := collectAllows(fset, []*ast.File{f})
	return fset, allows, malformed
}

func TestCollectAllows(t *testing.T) {
	_, allows, malformed := parseAllowFixture(t)

	if len(allows) != 2 {
		t.Fatalf("got %d well-formed allows, want 2: %+v", len(allows), allows)
	}
	first := allows[0]
	if first.Analyzer != "detrange" || first.Reason != "keys are interchangeable" || first.Line != 3 {
		t.Errorf("first allow = %+v, want detrange/keys are interchangeable on line 3", first)
	}
	second := allows[1]
	if second.Analyzer != "hostsafe" || second.Reason != "simulator-only path" || second.Line != 6 {
		t.Errorf("second allow = %+v, want hostsafe/simulator-only path on line 6", second)
	}

	// The reason-less directives (lines 8 and 11) are malformed: a
	// suppression must record its justification.
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %+v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Analyzer != "allow" || !strings.Contains(d.Message, "malformed //lint:allow") {
			t.Errorf("malformed diagnostic = %+v, want allow/malformed message", d)
		}
	}
}

func TestApplyAllowsCoverage(t *testing.T) {
	diag := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Message:  "finding",
			Position: token.Position{Filename: file, Line: line, Column: 1},
		}
	}
	allow := func(file string, line int, analyzer string) *Allow {
		return &Allow{File: file, Line: line, Analyzer: analyzer, Reason: "r"}
	}

	t.Run("same line and next line suppress", func(t *testing.T) {
		diags := []Diagnostic{diag("f.go", 10, "detrange"), diag("f.go", 11, "detrange")}
		kept := applyAllows(diags, []*Allow{allow("f.go", 10, "detrange")})
		if len(kept) != 0 {
			t.Errorf("kept %d diagnostics, want 0 (directive covers its line and the next): %+v", len(kept), kept)
		}
	})

	t.Run("wrong analyzer does not suppress", func(t *testing.T) {
		kept := applyAllows([]Diagnostic{diag("f.go", 10, "ctxflow")}, []*Allow{allow("f.go", 10, "detrange")})
		// The finding survives AND the useless directive is reported.
		var msgs []string
		for _, d := range kept {
			msgs = append(msgs, d.Analyzer+": "+d.Message)
		}
		if len(kept) != 2 {
			t.Errorf("kept = %v, want the ctxflow finding plus an unused-allow report", msgs)
		}
	})

	t.Run("distance two does not suppress", func(t *testing.T) {
		kept := applyAllows([]Diagnostic{diag("f.go", 12, "detrange")}, []*Allow{allow("f.go", 10, "detrange")})
		if len(kept) != 2 {
			t.Errorf("kept %d diagnostics, want 2 (finding + unused allow)", len(kept))
		}
	})

	t.Run("other file does not suppress", func(t *testing.T) {
		kept := applyAllows([]Diagnostic{diag("g.go", 10, "detrange")}, []*Allow{allow("f.go", 10, "detrange")})
		if len(kept) != 2 {
			t.Errorf("kept %d diagnostics, want 2 (finding + unused allow)", len(kept))
		}
	})

	t.Run("unused allow is reported", func(t *testing.T) {
		kept := applyAllows(nil, []*Allow{allow("f.go", 10, "detrange")})
		if len(kept) != 1 || kept[0].Analyzer != "allow" ||
			!strings.Contains(kept[0].Message, "unused //lint:allow") {
			t.Errorf("kept = %+v, want one unused-allow diagnostic", kept)
		}
	})
}

func TestFormatHasVerb(t *testing.T) {
	cases := []struct {
		format string
		verb   byte
		want   bool
	}{
		{"%w", 'w', true},
		{"wrap: %w", 'w', true},
		{"%+w", 'w', true},
		{"%[1]w", 'w', true},
		{"%v", 'w', false},
		{"100%% wrong", 'w', false},
		{"%d != %d", 'w', false},
		{"%w: %w", 'w', true},
		{"no verbs at all", 'w', false},
	}
	for _, c := range cases {
		if got := FormatHasVerb(c.format, c.verb); got != c.want {
			t.Errorf("FormatHasVerb(%q, %q) = %v, want %v", c.format, c.verb, got, c.want)
		}
	}
}
