// Fixture: map iterations whose order leaks into results. The package
// name opts into detrange's scope (ilp is a deterministic pipeline
// package).
package ilp

// addConstraint stands in for an order-sensitive sink (constraint
// emission, hash writes, measurement ops).
func addConstraint(v int) {}

// Constraint emission in map order: the call sequence follows the map.
func emit(weights map[int]int) {
	for v := range weights { // want `map iteration order drives calls`
		addConstraint(v)
	}
}

// Appending to an outer slice in map order leaks the order into the
// result (and there is no sort afterwards).
func collect(weights map[int]int) []int {
	var out []int
	for v := range weights { // want `leaks into an appended slice`
		out = append(out, v)
	}
	return out
}

// Method receivers derived from the loop variable are effects too.
type counter struct{ n int }

func (c *counter) bump() {}

func touchAll(m map[int]*counter) {
	for _, c := range m { // want `map iteration order drives calls`
		c.bump()
	}
}

// Float accumulation does not commute.
func total(w map[int]float64) float64 {
	var sum float64
	for _, x := range w { // want `order-sensitive accumulation`
		sum += x
	}
	return sum
}

// Neither does string concatenation.
func join(w map[int]string) string {
	s := ""
	for _, v := range w { // want `order-sensitive accumulation`
		s += v
	}
	return s
}
