// Fixture: a finding suppressed by //lint:allow with a recorded reason
// must stay silent (and the directive must count as used).
package probe

func consume(int) {}

func anyOrder(m map[int]int) {
	//lint:allow detrange per-key effect is idempotent, order immaterial
	for k := range m {
		consume(k)
	}
}
