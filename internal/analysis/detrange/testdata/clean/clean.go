// Fixture: legal map iteration patterns that must stay unflagged (the
// no-false-positive contract).
package locate

import "sort"

// Collect-then-sort is the sanctioned way to order map keys.
func sortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sort.Slice with a comparator also sanitizes the collect idiom.
func sortedPairs(edges map[[2]int]int) [][2]int {
	keys := make([][2]int, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i][0] < keys[j][0] })
	return keys
}

// Keyed writes are order-insensitive.
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Integer reductions commute.
func sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Pure lookups and builtin calls are harmless.
func width(m map[int][]int) int {
	w := 0
	for _, v := range m {
		if len(v) > w {
			w = len(v)
		}
	}
	return w
}

// Ranging over a slice is always ordered, whatever the body does.
func emitAll(order []int, sink func(int)) {
	for _, v := range order {
		sink(v)
	}
}
