// Package detrange flags range statements over maps whose iteration
// order can leak into pipeline results.
//
// The reconstruction pipeline promises bit-identical output for identical
// input — the ILP map must not depend on worker count, constraint order
// or cache state, and the content-addressed caches fingerprint canonical
// encodings. A single `for k := range m` that appends to a result slice,
// drives a measurement, or feeds a hash in map order silently breaks that
// promise (Go randomizes map iteration per run). The analyzer applies
// only to the determinism-critical packages — ilp, locate, probe, memo —
// selected by package name so fixtures opt in the same way.
//
// A map range is flagged when its body
//
//   - appends to a slice declared outside the loop, unless the loop body
//     does nothing else and the slice is passed to a sort call in the
//     statements that follow the loop (the collect-then-sort idiom is the
//     sanctioned way to order map keys);
//   - calls a function or method with a loop-variable-derived argument or
//     receiver (each iteration performs an effect, so the effect sequence
//     follows map order — measurement ops, constraint emission, hash
//     writes all enter through here); or
//   - concatenates onto a string, or accumulates into a float, declared
//     outside the loop (order-sensitive reductions; integer sums are
//     order-insensitive and stay legal).
//
// Keyed writes (m2[k] = v), pure lookups and commutative integer
// reductions are deliberately not flagged.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"coremap/internal/analysis"
)

// Analyzer is the detrange check. The scope is include-by-default: the
// byte-identical-output promise covers the whole library, so a new
// package is determinism-checked from its first commit; packages whose
// map iteration cannot reach an output are excluded by path with the
// reason recorded (the roster-coverage test keeps the list honest).
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map iteration whose order feeds solver constraints, fingerprints, " +
		"observations or appended slices in the deterministic pipeline packages",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package (byte-identical outputs are a repo-wide promise)",
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: diagnostics are position-sorted by the runner, not by discovery order",
		},
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// Walk with enough context to see the statements that follow each
	// range loop (for the collect-then-sort exemption), so inspect
	// blocks rather than bare statements.
	ast.Inspect(f, func(n ast.Node) bool {
		stmts := blockStmts(n)
		if stmts == nil {
			return true
		}
		for i, s := range stmts {
			rs, ok := s.(*ast.RangeStmt)
			if !ok || !analysis.IsMapType(pass, rs.X) {
				continue
			}
			checkMapRange(pass, rs, stmts[i+1:])
		}
		return true
	})
}

// blockStmts returns the statement list of any block-bearing node.
func blockStmts(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	loopVars := rangeVars(pass, rs)

	var appended []types.Object // outer slices appended to, in order
	onlyAppends := true         // body is the pure collect idiom
	var firstCall *ast.CallExpr // first order-sensitive call
	var firstAccum ast.Node     // first order-sensitive accumulation

	analysis.InspectShallow(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if analysis.IsBuiltin(pass, s, "append") {
				if obj := outerSliceTarget(pass, s, rs); obj != nil {
					appended = append(appended, obj)
				}
				return true
			}
			if isOrderInsensitiveCall(pass, s) {
				return true
			}
			onlyAppends = false
			if firstCall == nil && callTouchesVars(pass, s, loopVars) {
				firstCall = s
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && firstAccum == nil &&
				isOrderSensitiveAccum(pass, s, rs, loopVars) {
				firstAccum = s
			}
		}
		return true
	})

	switch {
	case firstCall != nil:
		pass.Reportf(rs.For,
			"map iteration order drives calls (%s): iterate a sorted key slice so the effect sequence is deterministic",
			callLabel(pass, firstCall))
	case firstAccum != nil:
		pass.Reportf(rs.For,
			"map iteration order feeds an order-sensitive accumulation: iterate a sorted key slice")
	case len(appended) > 0:
		if onlyAppends && allSortedAfter(pass, appended, following) {
			return // the sanctioned collect-then-sort idiom
		}
		pass.Reportf(rs.For,
			"map iteration order leaks into an appended slice: sort the result, or iterate a sorted key slice")
	}
}

// rangeVars returns the objects of the loop's key/value variables.
func rangeVars(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	var vars []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// outerSliceTarget returns the object of append's destination when it is
// a plain identifier (possibly dereferenced) declared outside the loop.
// Keyed destinations (m[k] = append(m[k], ...)) are order-insensitive and
// return nil.
func outerSliceTarget(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	dst := ast.Unparen(call.Args[0])
	if star, ok := dst.(*ast.StarExpr); ok {
		dst = ast.Unparen(star.X)
	}
	var id *ast.Ident
	switch d := dst.(type) {
	case *ast.Ident:
		id = d
	case *ast.SelectorExpr:
		id = d.Sel
	default:
		return nil
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
		return nil // loop-local scratch
	}
	return obj
}

// isOrderInsensitiveCall reports whether the call is harmless regardless
// of iteration order: pure builtins and type conversions.
func isOrderInsensitiveCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, b := range []string{"len", "cap", "delete", "min", "max", "make", "new", "copy"} {
		if analysis.IsBuiltin(pass, call, b) {
			return true
		}
	}
	// A type conversion has a type, not a function, in call position.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// callTouchesVars reports whether the call's receiver or arguments
// reference a loop variable — the signature of a per-element effect whose
// order follows the map.
func callTouchesVars(pass *analysis.Pass, call *ast.CallExpr, vars []types.Object) bool {
	if analysis.UsesAnyObject(pass, call.Fun, vars) {
		return true
	}
	for _, a := range call.Args {
		if analysis.UsesAnyObject(pass, a, vars) {
			return true
		}
	}
	return false
}

// isOrderSensitiveAccum reports whether s accumulates a loop-derived
// value into an outer string or float with +=.
func isOrderSensitiveAccum(pass *analysis.Pass, s *ast.AssignStmt, rs *ast.RangeStmt, vars []types.Object) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil || (obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End()) {
		return false
	}
	if !analysis.UsesAnyObject(pass, s.Rhs[0], vars) {
		return false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Info() & (types.IsString | types.IsFloat) {
	case 0:
		return false // integer and other commutative accumulations
	default:
		return true
	}
}

// allSortedAfter reports whether every appended slice is passed to a
// sort-like call in the statements directly following the loop.
func allSortedAfter(pass *analysis.Pass, appended []types.Object, following []ast.Stmt) bool {
	for _, obj := range appended {
		if !sortedAfter(pass, obj, following) {
			return false
		}
	}
	return true
}

// callLabel names a call for the diagnostic message.
func callLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "a call"
}

func sortedAfter(pass *analysis.Pass, obj types.Object, following []ast.Stmt) bool {
	for _, s := range following {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !analysis.UsesObject(pass, call, obj) {
			continue
		}
		fn := analysis.CalleeFunc(pass, call)
		if fn == nil {
			continue
		}
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			return true
		}
		if strings.Contains(strings.ToLower(fn.Name()), "sort") {
			return true
		}
	}
	return false
}
