package detrange_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/detrange"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), detrange.Analyzer)
}

// TestClean pins the no-false-positive contract: sanctioned iteration
// idioms (collect-then-sort, keyed writes, commutative reductions) are
// not reported.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), detrange.Analyzer)
}

// TestAllowed pins the suppression contract: a //lint:allow directive
// with a reason silences the finding on the next line.
func TestAllowed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "allowed"), detrange.Analyzer)
}
