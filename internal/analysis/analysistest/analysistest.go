// Package analysistest runs coremaplint analyzers over testdata fixture
// packages and checks their diagnostics against expectations written in
// the fixture source, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `iteration order`
//
// Each `// want` comment carries one or more back-quoted or double-quoted
// regular expressions. The diagnostics reported on that line must match
// the expectations one-to-one: an unmatched expectation and an unexpected
// diagnostic are both test failures, so fixtures pin false negatives and
// false positives symmetrically. //lint:allow suppression is applied
// before matching, which lets fixtures assert that suppressed findings
// stay silent.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"coremap/internal/analysis"
)

// wantRe matches one expectation string: back-quoted or double-quoted.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the single package in dir, applies the analyzers, and
// reports any mismatch between diagnostics and // want expectations as
// test errors. Multiple analyzers may run together so fixtures can pin
// cross-analyzer interactions (shared suppressions, disjoint findings).
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunWithDeps(t, dir, nil, analyzers...)
}

// RunWithDeps is Run with real module packages analyzed alongside the
// fixture: deps names them as load patterns (e.g.
// "coremap/internal/topo/..."). The runner processes imports before
// importers, so facts exported while analyzing a dependency are visible
// to the fixture — this is how fixtures pin cross-package fact flow.
// Expectations are still collected from the fixture only; a diagnostic
// on a dependency package fails the test, pinning that the real tree
// stays clean under the analyzers.
func RunWithDeps(t *testing.T, dir string, deps []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	if len(deps) > 0 {
		depPkgs, err := loader.LoadPatterns(deps)
		if err != nil {
			t.Fatalf("loading dependency packages %v: %v", deps, err)
		}
		pkgs = depPkgs
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	pkgs = append(pkgs, pkg)
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parsing // want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmet expectation on the diagnostic's line whose
// pattern matches its message, and reports whether one was found.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.met || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWant(pkg.Fset.Position(c.Pos()), c.Text)
				if err != nil {
					return nil, err
				}
				wants = append(wants, ws...)
			}
		}
	}
	return wants, nil
}

func parseWant(pos token.Position, comment string) ([]*expectation, error) {
	body := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(body, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, "want "))
	matches := wantRe.FindAllString(rest, -1)
	if len(matches) == 0 {
		return nil, fmt.Errorf("%s: `// want` comment without a quoted pattern", pos)
	}
	var out []*expectation
	for _, m := range matches {
		pattern := m
		if strings.HasPrefix(m, "\"") {
			unq, err := strconv.Unquote(m)
			if err != nil {
				return nil, fmt.Errorf("%s: bad want pattern %s: %w", pos, m, err)
			}
			pattern = unq
		} else {
			pattern = strings.Trim(m, "`")
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("%s: bad want regexp %q: %w", pos, pattern, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
	}
	return out, nil
}
