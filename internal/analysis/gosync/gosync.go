// Package gosync enforces the goroutine-join discipline of the library
// packages ahead of the fleet-mapping server: a goroutine that nobody
// joins can outlive the operation that spawned it, keep mutating shared
// state after results are read, and silently corrupt the byte-identical
// maps the pipeline promises. Every `go` statement must carry a provable
// join or observe cancellation:
//
//   - WaitGroup pairing, checked on the control-flow graph: a wg.Add on
//     the same WaitGroup must dominate the spawn (precede it on every
//     path), and the spawned function literal must call wg.Done
//     (typically deferred). Add inside the spawned goroutine is flagged
//     specifically — it races with Wait.
//
//   - channel handshake: the goroutine closes or sends on a channel that
//     the spawning body receives from (or ranges over), so the spawner
//     blocks until the goroutine signals.
//
//   - context observation: the goroutine selects on / receives from
//     ctx.Done(), so cancellation reaps it even if the spawner does not
//     block on it.
//
// A join the analyzer cannot see — handed to another function, stored in
// a struct and collected later — must be annotated with
// //lint:allow gosync and the reason (see obs.ServeDebug, whose serve
// goroutine is joined by Close).
//
// The analyzer also flags the redundant pre-Go 1.22 loop-variable copy
// (`v := v` above a spawn in a loop): go.mod declares go 1.22, loop
// variables are per-iteration, and the shadow copy only obscures which
// variable the goroutine captures.
//
// gosync exports facts consumed across import edges: a Spawns object
// fact on every function whose body (or nested closure) contains a go
// statement, and a PkgSpawns package fact summing them. toposafe uses
// them to tell concurrency-exposed packages from single-threaded ones.
package gosync

import (
	"go/ast"
	"go/token"
	"go/types"

	"coremap/internal/analysis"
	"coremap/internal/analysis/cfg"
)

// Spawns is the object fact exported on every function or method whose
// body contains a go statement (including inside nested closures): code
// calling it may run concurrently with the caller's continuation.
type Spawns struct{ Count int }

// AFact marks Spawns as a fact.
func (*Spawns) AFact() {}

// PkgSpawns is the package fact summing the package's go statements.
type PkgSpawns struct{ Goroutines int }

// AFact marks PkgSpawns as a fact.
func (*PkgSpawns) AFact() {}

// Analyzer is the gosync check.
var Analyzer = &analysis.Analyzer{
	Name: "gosync",
	Doc: "flags goroutines in library packages without a provable join " +
		"(WaitGroup Add-before-spawn/Done-inside pairing on the CFG, channel handshake, " +
		"or ctx.Done observation), wg.Add inside the spawned goroutine, " +
		"and redundant pre-Go 1.22 loop-variable copies",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package; commands own their process lifetime",
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: single-threaded batch tooling run under the go test harness, not pipeline code",
		},
	},
}

func run(pass *analysis.Pass) error {
	goroutines := 0
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Count every spawn in the declared function, closures
			// included, for the facts; join-check each body separately.
			n := countGoStmts(fd.Body)
			if n > 0 {
				goroutines += n
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					if err := pass.ExportObjectFact(obj, &Spawns{Count: n}); err != nil {
						return err
					}
				}
			}
			checkBodies(pass, fd.Body)
		}
	}
	if goroutines > 0 {
		if err := pass.ExportPackageFact(&PkgSpawns{Goroutines: goroutines}); err != nil {
			return err
		}
	}
	return nil
}

// countGoStmts counts go statements anywhere under n, closures included.
func countGoStmts(n ast.Node) int {
	count := 0
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.GoStmt); ok {
			count++
		}
		return true
	})
	return count
}

// checkBodies applies the join rules to body and, recursively, to every
// closure body it contains. Each body is its own scope: a join in the
// enclosing function does not excuse a spawn inside a closure, because
// the closure runs on its own schedule.
func checkBodies(pass *analysis.Pass, body *ast.BlockStmt) {
	checkBody(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
		}
		return true
	})
}

// checkBody join-checks the go statements directly inside one body
// (closures excluded — they are separate scopes) and flags redundant
// loop-variable copies.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var goStmts []*ast.GoStmt
	analysis.InspectShallow(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	checkLoopVarCopies(pass, body)
	if len(goStmts) == 0 {
		return
	}
	g := cfg.New(body)
	idom := g.Dominators()
	for _, gs := range goStmts {
		checkGo(pass, body, g, idom, gs)
	}
}

// checkGo verifies one spawn's join evidence.
func checkGo(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.Graph, idom []*cfg.Block, gs *ast.GoStmt) {
	lit, _ := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)

	if lit != nil {
		// Add inside the goroutine races with Wait regardless of other
		// join evidence: Wait can return before the Add lands.
		if pos, recv, ok := findWaitGroupCall(pass, lit.Body, "Add"); ok {
			pass.Reportf(pos,
				"%s.Add inside the spawned goroutine races with Wait: call Add before the go statement",
				recv)
			return
		}
	}

	if joined, why := joinEvidence(pass, body, g, idom, gs, lit); !joined {
		msg := "goroutine has no provable join: pair wg.Add before the spawn with a deferred wg.Done inside it, " +
			"receive on a channel the goroutine closes/sends to, or observe ctx.Done() in the goroutine " +
			"(annotate cross-function joins with //lint:allow gosync <reason>)"
		if why != "" {
			msg = why
		}
		pass.Reportf(gs.Pos(), "%s", msg)
	}
}

// joinEvidence looks for any of the three sanctioned join shapes. When
// the WaitGroup shape is almost right (Done inside, but no dominating
// Add), it returns a targeted message instead of the generic one.
func joinEvidence(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.Graph, idom []*cfg.Block, gs *ast.GoStmt, lit *ast.FuncLit) (bool, string) {
	if lit == nil {
		// A named function spawned directly: the analyzer cannot see its
		// body, so only an annotated allow can bless it.
		return false, ""
	}

	// Context observation: the goroutine receives from ctx.Done().
	if observesContextDone(pass, lit.Body) {
		return true, ""
	}

	// WaitGroup pairing.
	if _, recv, ok := findWaitGroupCall(pass, lit.Body, "Done"); ok {
		if addDominatesSpawn(pass, g, idom, gs, recv) {
			return true, ""
		}
		return false, recv + ".Done runs in the goroutine but no " + recv +
			".Add dominates the spawn: Add must precede the go statement on every path, or Wait can return early"
	}

	// Channel handshake: goroutine closes or sends on a channel the
	// spawning body receives from or ranges over.
	for _, ch := range handshakeChannels(pass, lit.Body) {
		if bodyReceivesFrom(pass, body, lit, ch) {
			return true, ""
		}
	}
	return false, ""
}

// findWaitGroupCall finds a call to the named method on a sync.WaitGroup
// receiver anywhere under body (deferred calls included) and returns its
// position and the receiver's expression text.
func findWaitGroupCall(pass *analysis.Pass, body *ast.BlockStmt, name string) (pos token.Pos, recv string, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return true
		}
		if t := pass.TypeOf(sel.X); t != nil && analysis.IsNamedType(t, "sync", "WaitGroup") {
			pos, recv, found = call.Pos(), types.ExprString(sel.X), true
			return false
		}
		return true
	})
	return pos, recv, found
}

// addDominatesSpawn reports whether a recv.Add(...) call dominates the
// go statement: same block at an earlier position, or a strictly
// dominating block.
func addDominatesSpawn(pass *analysis.Pass, g *cfg.Graph, idom []*cfg.Block, gs *ast.GoStmt, recv string) bool {
	goBlk := g.BlockOf(gs.Pos())
	if goBlk == nil {
		return false
	}
	result := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(c ast.Node) bool {
				if result {
					return false
				}
				if _, ok := c.(*ast.FuncLit); ok {
					return false // an Add inside another closure proves nothing here
				}
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" || types.ExprString(sel.X) != recv {
					return true
				}
				t := pass.TypeOf(sel.X)
				if t == nil || !analysis.IsNamedType(t, "sync", "WaitGroup") {
					return true
				}
				if blk == goBlk {
					result = call.Pos() < gs.Pos()
				} else {
					result = g.Dominates(idom, blk, goBlk)
				}
				return !result
			})
		}
	}
	return result
}

// observesContextDone reports whether body receives from Done() called
// on a context.Context value (directly or via select).
func observesContextDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := pass.TypeOf(sel.X); analysis.IsContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// handshakeChannels returns the expression texts of channels body closes
// or sends on — the goroutine's side of a potential handshake.
func handshakeChannels(pass *analysis.Pass, body *ast.BlockStmt) []string {
	var chans []string
	add := func(e ast.Expr) {
		if t := pass.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				chans = append(chans, types.ExprString(e))
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			add(n.Chan)
		case *ast.CallExpr:
			if analysis.IsBuiltin(pass, n, "close") && len(n.Args) == 1 {
				add(n.Args[0])
			}
		}
		return true
	})
	return chans
}

// bodyReceivesFrom reports whether the spawning body (excluding the
// spawned literal itself) receives from or ranges over the channel with
// the given expression text.
func bodyReceivesFrom(pass *analysis.Pass, body *ast.BlockStmt, lit *ast.FuncLit, ch string) bool {
	found := false
	isCh := func(e ast.Expr) bool {
		if types.ExprString(e) != ch {
			return false
		}
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == ast.Node(lit) {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isCh(n.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isCh(n.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkLoopVarCopies flags `v := v` self-shadows of loop variables in
// loops that spawn goroutines — the pre-Go 1.22 capture workaround,
// redundant since go.mod declares go 1.22 (per-iteration variables).
func checkLoopVarCopies(pass *analysis.Pass, body *ast.BlockStmt) {
	analysis.InspectShallow(body, func(n ast.Node) bool {
		var loopVars []types.Object
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{l.Key, l.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.ObjectOf(id); obj != nil {
						loopVars = append(loopVars, obj)
					}
				}
			}
			loopBody = l.Body
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.ObjectOf(id); obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
			}
			loopBody = l.Body
		default:
			return true
		}
		if loopBody == nil || countGoStmts(loopBody) == 0 {
			return true
		}
		for _, s := range loopBody.List {
			as, ok := s.(*ast.AssignStmt)
			if !ok || as.Tok.String() != ":=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, ok1 := as.Lhs[0].(*ast.Ident)
			rhs, ok2 := as.Rhs[0].(*ast.Ident)
			if !ok1 || !ok2 || lhs.Name != rhs.Name {
				continue
			}
			for _, lv := range loopVars {
				if pass.ObjectOf(rhs) == lv {
					pass.Reportf(as.Pos(),
						"redundant pre-Go 1.22 loop-variable copy %s := %s: loop variables are per-iteration (go.mod declares go 1.22); capture %s directly or pass it as an argument",
						lhs.Name, rhs.Name, lhs.Name)
				}
			}
		}
		return true
	})
}
