// Fixture: cross-function joins the analyzer cannot see are blessed by
// //lint:allow with a recorded reason, both trailing and standalone.
package ilp

import "sync"

type server struct {
	wg sync.WaitGroup
}

func (s *server) loop() {}

// The goroutine is joined by Stop, a different function: the analyzer
// cannot prove it, so the spawn carries an annotation.
func (s *server) start() {
	s.wg.Add(1)
	go s.loop() //lint:allow gosync joined by Stop via s.wg.Wait
}

// Stop is the cross-function join the annotation names.
func (s *server) stop() {
	s.wg.Wait()
}

// Standalone directive on the line above the spawn works too.
func detached() {
	//lint:allow gosync telemetry flusher is reaped at process exit by design
	go func() {
		work()
	}()
}

func work() {}
