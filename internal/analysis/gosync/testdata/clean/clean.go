// Fixture: every sanctioned join shape stays silent — WaitGroup pairing
// (straight-line, loop worker pool, Add-of-n before the loop), channel
// handshakes (close, send, range), and ctx.Done observation.
package ilp

import (
	"context"
	"sync"
)

func work()         {}
func produce() int  { return 0 }
func consume(v int) {}

// The canonical pairing: Add before the spawn, deferred Done inside.
func addBeforeSpawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Worker pool: Add(1) per iteration directly before each spawn.
func workerPool(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			consume(x)
		}()
	}
	wg.Wait()
}

// Bulk Add before the loop dominates every spawn inside it.
func bulkAdd(xs []int) {
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for range xs {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Close handshake: the spawner blocks until the goroutine closes done.
func closeHandshake() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// Send handshake: the spawner receives the goroutine's result.
func sendHandshake() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// Range handshake: the spawner drains the channel the goroutine closes.
func rangeHandshake(n int) int {
	out := make(chan int)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- produce()
		}
	}()
	sum := 0
	for v := range out {
		sum += v
	}
	return sum
}

// Cancellation observation: the goroutine selects on ctx.Done, so the
// caller's cancel reaps it even without a blocking join here.
func watcher(ctx context.Context, ticks <-chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ticks:
				consume(v)
			}
		}
	}()
}

// A closure that spawns carries its own join evidence in its own body.
func closureWithOwnJoin() func() {
	return func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
		wg.Wait()
	}
}

// Go 1.22 loop variables are per-iteration: capturing x directly is the
// idiom, and no shadow copy is required.
func perIterationCapture(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			consume(x)
		}()
	}
	wg.Wait()
}
