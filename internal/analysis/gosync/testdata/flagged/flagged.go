// Fixture: goroutines without a provable join, WaitGroup misuse, and
// redundant loop-variable copies. The package name (ilp) stands in for a
// library pipeline package.
package ilp

import "sync"

func work()    {}
func observe() {}

// A bare spawn with no join evidence at all: nothing waits for it.
func fireAndForget() {
	go work() // want `goroutine has no provable join`
}

// A closure spawn is no better when nothing joins it.
func fireAndForgetClosure() {
	go func() { // want `goroutine has no provable join`
		work()
	}()
}

// Add inside the spawned goroutine races with Wait: Wait can observe the
// counter before the goroutine has run Add.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg\.Add inside the spawned goroutine races with Wait`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Done inside, but the Add only happens on one branch: on the other
// path Wait returns before the goroutine finishes.
func addOnOneBranchOnly(n int) {
	var wg sync.WaitGroup
	if n > 0 {
		wg.Add(1)
	}
	go func() { // want `no wg\.Add dominates the spawn`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// The pre-Go 1.22 loop-variable copy: go.mod declares go 1.22, so loop
// variables are already per-iteration and the shadow only obscures the
// capture.
func loopVarCopy(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		x := x // want `redundant pre-Go 1.22 loop-variable copy`
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = x
			observe()
		}()
	}
	wg.Wait()
}

// A spawn inside a closure is the closure's responsibility: join
// evidence in the enclosing function does not cover it.
func spawnInsideClosure() func() {
	var wg sync.WaitGroup
	wg.Add(1)
	return func() {
		go work() // want `goroutine has no provable join`
		wg.Done()
	}
}
