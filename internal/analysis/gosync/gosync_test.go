package gosync_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/gosync"
)

// TestFlagged pins the violation shapes: fire-and-forget spawns (named
// and closure), Add inside the goroutine, Add on only one path, the
// redundant loop-variable copy, and spawns hidden inside closures.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), gosync.Analyzer)
}

// TestClean pins the no-false-positive contract for every sanctioned
// join shape: WaitGroup pairing (straight-line, per-iteration, bulk),
// close/send/range channel handshakes, and ctx.Done observation.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), gosync.Analyzer)
}

// TestAllowed pins the suppression contract: cross-function joins carry
// //lint:allow gosync with a reason and stay silent, in both trailing
// and standalone-line form.
func TestAllowed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "allowed"), gosync.Analyzer)
}
