package toposafe_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/gosync"
	"coremap/internal/analysis/toposafe"
)

// TestFlagged pins the violation shapes: Register outside init, non-init
// package-level writes, a goroutine spawned in init, and init calling
// spawners — both a local one and obs.ServeDebug, whose Spawns fact
// arrives from gosync across a real import edge.
func TestFlagged(t *testing.T) {
	analysistest.RunWithDeps(t, filepath.Join("testdata", "flagged"),
		[]string{"coremap/internal/topo", "coremap/internal/obs"},
		gosync.Analyzer, toposafe.Analyzer)
}

// TestClean pins the no-false-positive contract: init registration,
// init-built tables, package-level reads, locals, and non-spawning
// helpers called from init.
func TestClean(t *testing.T) {
	analysistest.RunWithDeps(t, filepath.Join("testdata", "clean"),
		[]string{"coremap/internal/topo"},
		gosync.Analyzer, toposafe.Analyzer)
}

// TestSiblingImport pins the backend-independence rule end to end: the
// real ring backend is analyzed first, exports its RegistersBackend
// fact, and the fixture's import of it is flagged — while the analyzed
// ring package itself stays clean.
func TestSiblingImport(t *testing.T) {
	analysistest.RunWithDeps(t, filepath.Join("testdata", "siblings"),
		[]string{"coremap/internal/topo/ring"},
		toposafe.Analyzer)
}

// TestAllowed pins the suppression contract: the registration-API write
// stays silent under //lint:allow toposafe, while other writes in the
// same file remain flagged.
func TestAllowed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "allowed"), toposafe.Analyzer)
}
