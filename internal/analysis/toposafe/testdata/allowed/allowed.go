// Fixture: the one sanctioned escape — a registration API that writes
// package state on behalf of callers pinned into init — carries
// //lint:allow toposafe with the reason, mirroring topo.Register itself.
package topoallow

var registry = map[string]int{}

// register mirrors topo.Register: the write is suppressed because every
// caller of this function is itself pinned into init by this analyzer.
func register(name string) {
	registry[name] = len(registry) //lint:allow toposafe registration API; toposafe pins every caller into init
}

func init() {
	register("mesh")
}

// Unsuppressed writes in the same file stay flagged.
func reset() {
	registry = map[string]int{} // want `package-level registry is written from reset, not init`
}
