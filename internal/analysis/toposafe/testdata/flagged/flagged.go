// Fixture: registry-discipline violations. The package name (topobad)
// opts into the topo-subtree rules by prefix; the real obs and topo
// packages are analyzed alongside as dependencies, so gosync's Spawns
// fact on obs.ServeDebug arrives over a genuine import edge.
package topobad

import (
	"context"

	"coremap/internal/obs"
	"coremap/internal/topo"
)

// Registering outside init makes the roster depend on call order.
func registerLate() {
	topo.Register(nil) // want `topo\.Register outside an init function`
}

// Package-level mutable state written outside init.
var tally = map[string]int{}

func bump(k string) {
	tally[k]++ // want `package-level tally is written from bump, not init`
}

// init must not spawn goroutines directly — even joined ones: anything
// concurrent belongs behind an explicit entry point.
func init() {
	done := make(chan struct{})
	go func() { // want `init spawns a goroutine`
		close(done)
	}()
	<-done
}

// pump is gosync-clean (the goroutine observes ctx.Done), but it still
// spawns, so its Spawns fact forbids calling it from init.
func pump(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func init() {
	pump(context.Background()) // want `init calls pump, which spawns 1 goroutine`
}

// The imported spawner's fact crosses the package boundary: ServeDebug's
// serve goroutine is annotated in obs, but the fact is exported anyway.
func init() {
	_, _ = obs.ServeDebug("127.0.0.1:0", nil) // want `init calls ServeDebug, which spawns 1 goroutine`
}
