// Fixture: disciplined registry usage stays silent. The package name
// (topogood) opts into the topo-subtree rules by prefix.
package topogood

import "coremap/internal/topo"

// Registration from init is the sanctioned shape.
func init() { topo.Register(nil) }

// Derived tables written at init, read forever — the noc pattern.
var forward = [4]int{2, 0, 3, 1}
var inverse [4]int

func init() {
	for p, n := range forward {
		inverse[n] = p
	}
}

// Reads of package-level state are free.
func invert(n int) int { return inverse[n] }

// Locals are not package-level state.
func scratch(n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += invert(i % 4)
	}
	return acc
}

// init may call helpers that do not spawn.
func verifyTables() {
	for n := range inverse {
		if forward[inverse[n]] != n {
			panic("topogood: tables are not inverses")
		}
	}
}

func init() {
	verifyTables()
}
