// Fixture: importing a sibling backend package. The real ring backend is
// analyzed as a dependency first, so its RegistersBackend fact arrives
// over a genuine import edge — no hand-maintained backend roster.
package toposib

import (
	_ "coremap/internal/topo/ring" // want `import of sibling backend coremap/internal/topo/ring`
)
