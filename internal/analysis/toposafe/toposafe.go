// Package toposafe enforces the topology-registry discipline. The topo
// registry is a package-level map populated from backend package inits
// and then only read; nothing else keeps the -topology flag roster
// deterministic and data-race-free once the fleet server starts serving
// concurrent surveys. Four rules:
//
//   - topo.Register is called from init functions only. A Register call
//     on any other path makes the roster depend on execution order (and
//     on whether the path runs at all).
//
//   - backend packages stay independent: a package under
//     internal/topo/... must not import a sibling package that registers
//     a backend. The sanctioned aggregation point is
//     internal/topo/backends, which blank-imports the roster for
//     flag-driven binaries. Registration is detected by a package fact
//     toposafe exports while analyzing each backend, so a new backend is
//     covered the moment it calls Register — no hand-maintained list.
//
//   - package-level mutable state under internal/topo/... is written
//     from init only (the noc scrambling-table inverses are the
//     pattern). The registry write inside topo.Register itself carries
//     the one sanctioned //lint:allow.
//
//   - init functions spawn no goroutines, directly or through a callee
//     that does. Callee spawning is read from gosync's Spawns facts —
//     run gosync before toposafe in the suite — which cross import
//     edges, so an init calling an imported helper that leaks a
//     goroutine is caught from the importing package.
//
// Fixture packages opt into the topo-subtree rules by declaring a
// package name that starts with "topo", mirroring how real subtree
// packages (topotest) are named.
package toposafe

import (
	"go/ast"
	"go/types"
	"strings"

	"coremap/internal/analysis"
	"coremap/internal/analysis/gosync"
)

// RegistersBackend is the package fact exported on every package that
// calls topo.Register; the sibling-import rule reads it across import
// edges.
type RegistersBackend struct{ Calls int }

// AFact marks RegistersBackend as a fact.
func (*RegistersBackend) AFact() {}

// topoPkg is the registry package whose Register call sites are policed.
const topoPkg = "coremap/internal/topo"

// backendsPkg is the sanctioned aggregator allowed to import every
// backend.
const backendsPkg = "coremap/internal/topo/backends"

// Analyzer is the toposafe check.
var Analyzer = &analysis.Analyzer{
	Name: "toposafe",
	Doc: "enforces registry discipline: topo.Register from init only, no sibling-backend " +
		"imports (internal/topo/backends is the aggregation point), init-only writes to " +
		"package-level state under internal/topo, and no goroutines spawned from init " +
		"(via gosync's cross-package spawn facts)",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package; the topo-subtree rules additionally gate on the package path",
	},
}

func run(pass *analysis.Pass) error {
	registerCalls := checkRegisterCalls(pass)
	if registerCalls > 0 {
		if err := pass.ExportPackageFact(&RegistersBackend{Calls: registerCalls}); err != nil {
			return err
		}
	}
	if inTopoTree(pass) {
		checkSiblingImports(pass)
		checkPackageLevelWrites(pass)
	}
	checkInitSpawns(pass)
	return nil
}

// inTopoTree reports whether the package is under internal/topo (or is a
// fixture standing in for one, by the "topo" name prefix).
func inTopoTree(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, analysis.ModulePrefix) {
		return path == topoPkg || strings.HasPrefix(path, topoPkg+"/")
	}
	return strings.HasPrefix(pass.Pkg.Name(), "topo")
}

// checkRegisterCalls flags topo.Register calls outside init functions
// and returns the total number of Register call sites in the package.
func checkRegisterCalls(pass *analysis.Pass) int {
	calls := 0
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isTopoRegister(pass, call) {
					return true
				}
				calls++
				if !isInit(fd) {
					pass.Reportf(call.Pos(),
						"topo.Register outside an init function: the backend roster must be fixed at program start, not dependent on %s running",
						fd.Name.Name)
				}
				return true
			})
		}
	}
	return calls
}

// isTopoRegister reports whether call invokes the topo registry's
// Register function, resolved by object rather than by name so aliases
// and shadows cannot dodge the rule.
func isTopoRegister(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Name() == "Register" && fn.Pkg() != nil && fn.Pkg().Path() == topoPkg
}

// isInit reports whether fd is a package init function.
func isInit(fd *ast.FuncDecl) bool {
	return fd.Recv == nil && fd.Name.Name == "init"
}

// checkSiblingImports flags imports of sibling packages that register
// backends. The aggregator package is exempt — collecting the roster is
// its whole job.
func checkSiblingImports(pass *analysis.Pass) {
	if pass.Pkg.Path() == backendsPkg {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == pass.Pkg.Path() || !strings.HasPrefix(path, topoPkg+"/") {
				continue
			}
			var fact RegistersBackend
			if pass.ImportPackageFact(path, &fact) {
				pass.Reportf(imp.Pos(),
					"import of sibling backend %s: backends stay independent; link rosters through %s instead",
					path, backendsPkg)
			}
		}
	}
}

// checkPackageLevelWrites flags assignments to package-level variables
// outside init functions. Reads are free; the registry pattern is
// write-at-init, read-forever.
func checkPackageLevelWrites(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isInit(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						reportPackageVarWrite(pass, fd, lhs)
					}
				case *ast.IncDecStmt:
					reportPackageVarWrite(pass, fd, n.X)
				}
				return true
			})
		}
	}
}

// reportPackageVarWrite reports lhs if its root resolves to a
// package-level variable of the package under analysis.
func reportPackageVarWrite(pass *analysis.Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj, ok := pass.ObjectOf(root).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.Path() {
		return
	}
	if obj.Parent() != pass.Pkg.Scope() {
		return
	}
	pass.Reportf(lhs.Pos(),
		"package-level %s is written from %s, not init: topo packages keep mutable state init-only so concurrent surveys race on nothing",
		root.Name, fd.Name.Name)
}

// rootIdent returns the leftmost identifier of an lvalue chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkInitSpawns flags init functions that spawn goroutines — directly
// with a go statement, or by calling a function gosync marked with a
// Spawns fact (local or imported).
func checkInitSpawns(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isInit(fd) {
				continue
			}
			analysis.InspectShallow(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "init spawns a goroutine: registration must stay passive — start workers from an explicit entry point")
				case *ast.CallExpr:
					callee := calleeObject(pass, n)
					if callee == nil {
						return true
					}
					var fact gosync.Spawns
					if pass.ImportObjectFact(callee, &fact) {
						pass.Reportf(n.Pos(),
							"init calls %s, which spawns %d goroutine(s): registration must stay passive — start workers from an explicit entry point",
							callee.Name(), fact.Count)
					}
				}
				return true
			})
		}
	}
}

// calleeObject resolves the called function object for plain and
// qualified calls.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}
