package analysis

import "strings"

// ModulePrefix is the import-path prefix of the module's own packages;
// paths outside it (testdata fixture directories) are fixture packages.
const ModulePrefix = "coremap/"

// modulePath is the module root package itself, which has no slash and
// so needs its own check alongside the prefix.
const modulePath = "coremap"

// isModule reports whether path names one of the module's own packages
// (the root package or anything beneath it).
func isModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, ModulePrefix)
}

// internalPrefix is the subtree the lint suite is scoped to derive its
// rosters from (`go list ./internal/...`).
const internalPrefix = "coremap/internal/"

// A Scope decides which packages an analyzer applies to. The philosophy
// is include-by-default: every module-internal library package is in
// scope unless it appears in Exclude with a recorded reason, so a newly
// added package is linted from its first commit instead of waiting for
// someone to extend a hand-maintained roster. TestRosterCoverage pins
// the complement: every exclusion must name a package that still exists
// and carry a reason.
//
// Fixture packages (loaded from testdata directories, whose "import
// path" is a filesystem directory) opt in by declared package name, the
// same convention the analyzers have used since PR 4: a fixture named
// "ilp" is analyzed as if it were coremap/internal/ilp.
type Scope struct {
	// Doc states the scope in one line for -help-analyzers.
	Doc string

	// IncludeCommands extends the scope to package-main commands
	// (cmd/...). Most invariants concern the library pipeline; command
	// wiring is exempt unless an analyzer opts in.
	IncludeCommands bool

	// Exclude maps module import paths deliberately outside the scope to
	// the reason for the exclusion. A key ending in "/..." excludes the
	// whole subtree.
	Exclude map[string]string

	// FixtureNames lists the package names that opt a fixture package
	// in. Empty means every fixture package is in scope.
	FixtureNames []string
}

// Applies reports whether the scoped analyzer runs on the package with
// the given import path and name. A nil scope applies everywhere.
func (s *Scope) Applies(path, name string) bool {
	if s == nil {
		return true
	}
	if !isModule(path) {
		// Fixture package: opt in by name.
		if len(s.FixtureNames) == 0 {
			return true
		}
		for _, n := range s.FixtureNames {
			if n == name {
				return true
			}
		}
		return false
	}
	if name == "main" && !s.IncludeCommands {
		return false
	}
	_, excluded := s.ExcludeReason(path)
	return !excluded
}

// ExcludeReason returns the recorded reason if path is excluded, either
// exactly or via a "/..." subtree entry.
func (s *Scope) ExcludeReason(path string) (string, bool) {
	if s == nil {
		return "", false
	}
	if r, ok := s.Exclude[path]; ok {
		return r, true
	}
	for k, r := range s.Exclude {
		if sub, ok := strings.CutSuffix(k, "/..."); ok &&
			(path == sub || strings.HasPrefix(path, sub+"/")) {
			return r, true
		}
	}
	return "", false
}

// IsInternal reports whether path names a package under the module's
// internal/ tree (the subtree the rosters are derived from).
func IsInternal(path string) bool {
	return strings.HasPrefix(path, internalPrefix)
}

// EffectivePath returns the import path rule predicates should key on:
// the real path for module packages, and the internal path a fixture's
// package name stands in for (a fixture named "ilp" is judged as
// coremap/internal/ilp). This keeps in-analyzer exemption maps — which
// are keyed by import path so the roster-coverage test can verify them
// against `go list` — meaningful under the analysistest harness.
func EffectivePath(p *Pass) string {
	if path := p.Pkg.Path(); isModule(path) {
		return path
	}
	return internalPrefix + p.Pkg.Name()
}
