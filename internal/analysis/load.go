package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("coremap/internal/probe"), or the
	// directory for packages loaded outside the build (fixtures).
	Path string

	// Dir is the directory holding the source files.
	Dir string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader type-checks packages with a shared FileSet and importer so
// dependency type-checking work (the source importer re-checks imports
// from source) is paid once per process, not once per package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer, which
// resolves both standard-library and module-local imports from source.
// Module-local imports resolve through the go command, so the process
// must run with a working directory inside the module.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// load parses files and type-checks them as one package.
func (l *Loader) load(path, dir string, filenames []string) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: package %s has no Go files", path)
	}
	sort.Strings(filenames)
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}

// LoadDir loads the single package in dir from its non-test .go files.
// It is the fixture loader used by analysistest: the directory does not
// need to be part of the surrounding module's build (testdata trees are
// not), but its imports must resolve from the process working directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	return l.load(dir, dir, names)
}

func goFilesIn(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, m := range matches {
		base := filepath.Base(m)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		names = append(names, base)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	return names, nil
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// LoadPatterns expands go-list package patterns (e.g. "./...") and loads
// every matched package. Test files are not loaded: the invariants the
// analyzers enforce concern the shipped pipeline, and test-local shortcuts
// (context.Background in a test, a raw host poke) are legitimate there.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*Package
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		p, err := l.load(lp.ImportPath, lp.Dir, append([]string(nil), lp.GoFiles...))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
