package coremap

import (
	"context"
	"runtime"
	"testing"
	"time"

	"coremap/internal/cmerr"
	"coremap/internal/faulty"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// scoreAgainstTruth counts tiles of res placed on their true coordinate.
func scoreAgainstTruth(m *machine.Machine, res *Result) (correct, total int) {
	truth := make([]mesh.Coord, m.NumCHAs())
	for cha := range truth {
		truth[cha] = m.TrueCHACoord(cha)
	}
	_, correct = locate.Score(res.Pos, truth)
	return correct, len(truth)
}

// TestMapMachineSurvivesTwoPercentFaultRate is the fault-tolerance
// acceptance test: with a seeded injector failing 2% of host operations
// with transient faults, the pipeline must complete — possibly degraded,
// never a hard error — and recover at least 90% of the tiles.
func TestMapMachineSurvivesTwoPercentFaultRate(t *testing.T) {
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: 91})
	fh := faulty.New(m, faulty.Options{Seed: 91, Rate: 0.02})
	res, err := MapMachine(context.Background(), fh, DieInfo{Rows: sku.Rows, Cols: sku.Cols},
		Options{Probe: probe.Options{Seed: 91, RetryBackoff: time.Microsecond}})
	if err != nil && !cmerr.IsDegraded(err) {
		t.Fatalf("2%% fault rate produced a hard error instead of a (possibly degraded) result: %v", err)
	}
	if res == nil {
		t.Fatal("no result returned")
	}
	if fh.Injected() == 0 {
		t.Fatal("injector never fired; the test exercised nothing")
	}
	correct, total := scoreAgainstTruth(m, res)
	if correct*10 < total*9 {
		t.Errorf("recovered %d/%d tiles at 2%% fault rate, want >=90%%", correct, total)
	}
	t.Logf("injected %d faults over %d ops; recovered %d/%d tiles (degraded=%v, coverage=%.3f)",
		fh.Injected(), fh.Ops(), correct, total, res.Degraded, res.Coverage)
}

// TestMapMachineDegradesAroundStuckCPU pins the degradation path proper:
// one core whose every operation fails drains its retry budget, is
// dropped from the observation set, and the solve still places the
// remaining tiles from the surviving measurements.
func TestMapMachineDegradesAroundStuckCPU(t *testing.T) {
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: 92})
	fh := faulty.New(m, faulty.Options{Seed: 92, StuckCPUs: []int{5}})
	res, err := MapMachine(context.Background(), fh, DieInfo{Rows: sku.Rows, Cols: sku.Cols},
		Options{Probe: probe.Options{Seed: 92, RetryBackoff: time.Microsecond}})
	if err != nil && !cmerr.IsDegraded(err) {
		t.Fatalf("stuck CPU produced a hard error: %v", err)
	}
	if res == nil {
		t.Fatal("no result returned")
	}
	if !res.Degraded {
		t.Error("result not marked degraded despite a stuck CPU")
	}
	if res.Coverage >= 1 {
		t.Errorf("coverage = %.3f, want <1 with a stuck CPU", res.Coverage)
	}
	correct, total := scoreAgainstTruth(m, res)
	if correct*10 < total*9 {
		t.Errorf("recovered %d/%d tiles around a stuck CPU, want >=90%%", correct, total)
	}
}

// TestMapMachineCancelPrompt is the cancellation acceptance test: a
// cancelled MapMachine must return within 100ms against the simulated
// host and leak no goroutines.
func TestMapMachineCancelPrompt(t *testing.T) {
	before := runtime.NumGoroutine()
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: 93})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := MapMachine(ctx, m, DieInfo{Rows: sku.Rows, Cols: sku.Cols},
			Options{Probe: probe.Options{Seed: 93}})
		done <- outcome{res, err}
	}()

	time.Sleep(10 * time.Millisecond)
	cancelled := time.Now()
	cancel()
	select {
	case got := <-done:
		if since := time.Since(cancelled); since > 100*time.Millisecond {
			t.Errorf("MapMachine returned %v after cancel, want <100ms", since)
		}
		// A very fast machine could finish the whole map inside the 10ms
		// head start; otherwise the error must be an interruption.
		if got.err != nil && !cmerr.IsInterrupted(got.err) {
			t.Errorf("cancelled MapMachine returned %v, want Interrupted", got.err)
		}
		if got.err == nil {
			t.Log("map completed before the cancel landed; timing assertion still holds")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled MapMachine did not return within 2s")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled MapMachine", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapMachineTimeout drives the same path through context.WithTimeout,
// which is what the -timeout command-line flag uses.
func TestMapMachineTimeout(t *testing.T) {
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: 94})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := MapMachine(ctx, m, DieInfo{Rows: sku.Rows, Cols: sku.Cols},
		Options{Probe: probe.Options{Seed: 94}})
	if err == nil {
		t.Skip("map finished inside the 5ms budget; nothing to assert")
	}
	if !cmerr.IsInterrupted(err) {
		t.Fatalf("timed-out MapMachine returned %v, want Interrupted", err)
	}
}
