// Command coremaplint is the repository's invariant linter: a
// multichecker that runs the internal/analysis suite — detrange,
// cmerrcheck, ctxflow, hostsafe, poolsafe — over go-list package
// patterns and fails when any determinism, error-taxonomy, context,
// host-access or memory-reuse invariant is violated.
//
// Usage:
//
//	coremaplint [-only a,b] [packages]
//
// With no arguments it lints ./..., so both `make lint` and CI run
// exactly `go run ./cmd/coremaplint ./...` from the module root (the
// loader resolves module-local imports through the go command, so the
// working directory must be inside the module). Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
//
// Findings are suppressed per line with `//lint:allow <analyzer>
// <reason>`; see DESIGN.md §7 for each analyzer's invariant and the
// suppression contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coremap/internal/analysis"
	"coremap/internal/analysis/cmerrcheck"
	"coremap/internal/analysis/ctxflow"
	"coremap/internal/analysis/detrange"
	"coremap/internal/analysis/hostsafe"
	"coremap/internal/analysis/poolsafe"
)

// suite is every analyzer the multichecker runs, in report order.
var suite = []*analysis.Analyzer{
	detrange.Analyzer,
	cmerrcheck.Analyzer,
	ctxflow.Analyzer,
	hostsafe.Analyzer,
	poolsafe.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("coremaplint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("help-analyzers", false, "print the analyzers and their invariants, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coremaplint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coremaplint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coremaplint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "coremaplint: %d finding(s) across %d package(s)\n", n, len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: detrange, cmerrcheck, ctxflow, hostsafe, poolsafe)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
