// Command coremaplint is the repository's invariant linter: a
// multichecker that runs the internal/analysis suite — detrange,
// cmerrcheck, ctxflow, hostsafe, poolsafe, gosync, lockcheck, toposafe
// — over go-list package patterns and fails when any determinism,
// error-taxonomy, context, host-access, memory-reuse or
// concurrency-safety invariant is violated.
//
// Usage:
//
//	coremaplint [-only a,b] [-format text|json|sarif] [packages]
//
// With no arguments it lints ./..., so both `make lint` and CI run
// exactly `go run ./cmd/coremaplint ./...` from the module root (the
// loader resolves module-local imports through the go command, so the
// working directory must be inside the module). Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
//
// -format json emits the findings as a JSON array; -format sarif emits
// a SARIF 2.1.0 log for code-scanning upload. Both go to stdout and
// both still exit 1 on findings, so CI can upload the artifact and
// fail the job from the same invocation.
//
// Findings are suppressed per line with `//lint:allow <analyzer>
// <reason>`; see DESIGN.md §7 and §12 for each analyzer's invariant
// and the suppression contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coremap/internal/analysis"
	"coremap/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("coremaplint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	list := fs.Bool("help-analyzers", false, "print the analyzers and their invariants, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			if a.Scope != nil && a.Scope.Doc != "" {
				fmt.Printf("  scope: %s\n", a.Scope.Doc)
			}
		}
		return 0
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "coremaplint: unknown -format %q (have: text, json, sarif)\n", *format)
		return 2
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coremaplint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coremaplint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coremaplint:", err)
		return 2
	}

	switch *format {
	case "json":
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "coremaplint:", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(os.Stdout, diags, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "coremaplint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "coremaplint: %d finding(s) across %d package(s)\n", n, len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite.Analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite.Analyzers))
	for _, a := range suite.Analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(suite.Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
