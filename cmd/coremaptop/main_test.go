package main

import (
	"strings"
	"testing"
	"time"

	"coremap/internal/obs"
)

// snapshotFixture builds a small labeled world through a live registry so
// the dashboard's inputs stay structurally honest (canonical label suffixes,
// finalized histogram quantiles).
func snapshotFixture(t *testing.T, planned, hits, misses int64) obs.Snapshot {
	t.Helper()
	reg := obs.NewRegistry()
	for i := int64(0); i < planned; i++ {
		reg.Counter("probe/experiments/planned").Inc()
	}
	reg.Gauge("probe/cache/hits").Set(hits)
	reg.Gauge("probe/cache/misses").Set(misses)
	h := reg.HistogramVec("host/op_us", "op").With("rdmsr")
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	return reg.Snapshot()
}

func TestRenderOnce(t *testing.T) {
	snap := normalizeFromRegistry(t, snapshotFixture(t, 10, 3, 1))
	var b strings.Builder
	if err := render(&b, frame{snap: snap}, frame{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"[probe]",
		"[host]",
		"probe_experiments_planned",
		"hit  75.0%",
		`host_op_us{op="rdmsr"}`,
		"p50=",
		"p99=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "/s") {
		t.Errorf("one-shot frame must not print rates:\n%s", out)
	}
}

func TestRenderRates(t *testing.T) {
	prev := frame{snap: normalizeFromRegistry(t, snapshotFixture(t, 10, 0, 0)), at: time.Unix(100, 0)}
	cur := frame{snap: normalizeFromRegistry(t, snapshotFixture(t, 30, 0, 0)), at: time.Unix(102, 0)}
	var b strings.Builder
	if err := render(&b, cur, prev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "10.0/s") {
		t.Errorf("want 10.0/s rate for +20 counts over 2s, got:\n%s", b.String())
	}
}

func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	if err := render(&b, frame{}, frame{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no metrics yet") {
		t.Errorf("empty frame should say so, got:\n%s", b.String())
	}
}

// TestNormalizeMatchesParseProm pins the two ingestion paths to the same
// internal view: normalizing a JSON snapshot must agree with scraping the
// same registry's exposition, for every series key.
func TestNormalizeMatchesParseProm(t *testing.T) {
	snap := snapshotFixture(t, 5, 2, 2)
	fromJSON := normalize(snap)

	var b strings.Builder
	if err := obs.WriteProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	fromProm, err := obs.ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}

	for key := range fromJSON.Counters {
		if _, ok := fromProm.Counters[key]; !ok {
			t.Errorf("counter %q in normalized JSON but not in parsed exposition", key)
		}
	}
	for key := range fromJSON.Gauges {
		if _, ok := fromProm.Gauges[key]; !ok {
			t.Errorf("gauge %q in normalized JSON but not in parsed exposition", key)
		}
	}
	for key, h := range fromJSON.Histograms {
		ph, ok := fromProm.Histograms[key]
		if !ok {
			t.Errorf("histogram %q in normalized JSON but not in parsed exposition", key)
			continue
		}
		// A scraped histogram only knows bucket bounds, so its quantiles
		// are bucket upper bounds — at or above the native quantile, which
		// clamps to the true max.
		if ph.Count != h.Count || ph.Sum != h.Sum || ph.P99 < h.P99 {
			t.Errorf("histogram %q: parsed {count=%d sum=%d p99=%d}, normalized {count=%d sum=%d p99=%d}",
				key, ph.Count, ph.Sum, ph.P99, h.Count, h.Sum, h.P99)
		}
	}
}

func normalizeFromRegistry(t *testing.T, snap obs.Snapshot) obs.Snapshot {
	t.Helper()
	return normalize(snap)
}
