// Command coremaptop is a live terminal dashboard for a running (or
// finished) coremap pipeline. It polls a command's telemetry and renders
// per-stage counters with rates, cache hit ratios, and latency-histogram
// quantiles (p50/p95/p99/max).
//
// Usage:
//
//	coremaptop -addr localhost:6060 [-interval 2s] [-once]
//	coremaptop -metrics metrics.json [-once]
//
// -addr scrapes the Prometheus text exposition a command serves at
// /metrics when started with -debug-addr; -metrics reads the JSON snapshot
// a finished run wrote with -metrics-out (one-shot, no rates). Between
// refreshes the screen is cleared; -once prints a single frame and exits,
// which is how CI smoke-checks the dashboard. Both sources converge to the
// same internal view — exposition-form (underscore) metric names — so the
// renderer does not care where the sample came from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"coremap/internal/cli"
	"coremap/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "", "scrape http://<addr>/metrics (a command's -debug-addr)")
		metrics  = flag.String("metrics", "", "read a -metrics-out JSON snapshot file instead of scraping")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render a single frame and exit")
	)
	flag.Parse()

	if (*addr == "") == (*metrics == "") {
		fatal(fmt.Errorf("exactly one of -addr or -metrics is required"))
	}
	if *interval <= 0 {
		fatal(fmt.Errorf("-interval must be positive"))
	}

	src := func() (obs.Snapshot, error) { return scrape("http://" + *addr + "/metrics") }
	if *metrics != "" {
		src = func() (obs.Snapshot, error) { return readJSON(*metrics) }
	}

	cur, err := src()
	if err != nil {
		fatal(err)
	}
	if *once || *metrics != "" {
		if err := render(os.Stdout, frame{snap: cur}, frame{}); err != nil {
			fatal(err)
		}
		return
	}

	prev := frame{snap: cur, at: time.Now()}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for range ticker.C {
		snap, err := src()
		if err != nil {
			fatal(err)
		}
		next := frame{snap: snap, at: time.Now()}
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err := render(os.Stdout, next, prev); err != nil {
			fatal(err)
		}
		prev = next
	}
}

// frame is one dashboard sample: a snapshot and when it was taken (zero
// for one-shot frames, which then render without rates).
type frame struct {
	snap obs.Snapshot
	at   time.Time
}

// scrape fetches and parses one /metrics exposition.
func scrape(url string) (obs.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return obs.ParseProm(io.LimitReader(resp.Body, 64<<20))
}

// readJSON loads a -metrics-out snapshot and normalizes its slash-form
// names to the exposition form the renderer works in.
func readJSON(path string) (obs.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer f.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return normalize(snap), nil
}

// normalize rewrites every series key's base name with obs.PromName,
// leaving any {label} suffix intact.
func normalize(in obs.Snapshot) obs.Snapshot {
	out := obs.Snapshot{
		Counters: make(map[string]int64, len(in.Counters)),
		Gauges:   make(map[string]int64, len(in.Gauges)),
	}
	for k, v := range in.Counters {
		out.Counters[promKey(k)] = v
	}
	for k, v := range in.Gauges {
		out.Gauges[promKey(k)] = v
	}
	if len(in.Histograms) > 0 {
		out.Histograms = make(map[string]obs.HistogramSnapshot, len(in.Histograms))
		for k, v := range in.Histograms {
			out.Histograms[promKey(k)] = v
		}
	}
	return out
}

func promKey(key string) string {
	base, labels := splitKey(key)
	return obs.PromName(base) + labels
}

// splitKey splits a series key into base name and label suffix.
func splitKey(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// stageOf groups exposition names by their first underscore segment, which
// corresponds to the pipeline stage in the slash form (stage names contain
// no underscores).
func stageOf(name string) string {
	base, _ := splitKey(name)
	if i := strings.IndexByte(base, '_'); i >= 0 {
		return base[:i]
	}
	return base
}

// render writes one dashboard frame: stages sorted, and within each stage
// the counters (with per-second rates against prev when available), the
// gauges (with derived cache hit ratios), and the histogram quantile rows.
// prev with a zero timestamp disables rates. Pure — it reads only its
// arguments — so tests drive it with synthetic frames.
func render(w io.Writer, cur, prev frame) error {
	dt := 0.0
	if !prev.at.IsZero() && cur.at.After(prev.at) {
		dt = cur.at.Sub(prev.at).Seconds()
	}

	stages := make(map[string]bool)
	for name := range cur.snap.Counters {
		stages[stageOf(name)] = true
	}
	for name := range cur.snap.Gauges {
		stages[stageOf(name)] = true
	}
	for name := range cur.snap.Histograms {
		stages[stageOf(name)] = true
	}
	if len(stages) == 0 {
		_, err := fmt.Fprintln(w, "coremaptop: no metrics yet")
		return err
	}

	names := make([]string, 0, len(stages))
	for s := range stages {
		names = append(names, s)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "coremaptop — %d stages\n", len(names))
	for _, stage := range names {
		fmt.Fprintf(w, "\n[%s]\n", stage)
		for _, key := range sortedIn(cur.snap.Counters, stage) {
			line := fmt.Sprintf("  %-52s %12d", key, cur.snap.Counters[key])
			if dt > 0 {
				if old, ok := prev.snap.Counters[key]; ok {
					line += fmt.Sprintf("  %8.1f/s", float64(cur.snap.Counters[key]-old)/dt)
				}
			}
			fmt.Fprintln(w, line)
		}
		for _, key := range sortedIn(cur.snap.Gauges, stage) {
			line := fmt.Sprintf("  %-52s %12d", key, cur.snap.Gauges[key])
			if pct, ok := hitRatio(cur.snap.Gauges, key); ok {
				line += fmt.Sprintf("  hit %5.1f%%", pct)
			}
			fmt.Fprintln(w, line)
		}
		for _, key := range sortedIn(cur.snap.Histograms, stage) {
			h := cur.snap.Histograms[key]
			fmt.Fprintf(w, "  %-52s n=%-8d p50=%-8d p95=%-8d p99=%-8d max=%d\n",
				key, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
	}
	return nil
}

// sortedIn returns the keys of m that belong to stage, sorted.
func sortedIn[V any](m map[string]V, stage string) []string {
	var keys []string
	for k := range m {
		if stageOf(k) == stage {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// hitRatio derives a cache hit percentage for *_cache_hits gauges whose
// *_cache_misses sibling is present.
func hitRatio(gauges map[string]int64, key string) (float64, bool) {
	base, ok := strings.CutSuffix(key, "_cache_hits")
	if !ok {
		return 0, false
	}
	misses, ok := gauges[base+"_cache_misses"]
	if !ok {
		return 0, false
	}
	hits := gauges[key]
	total := hits + misses
	if total == 0 {
		return 0, false
	}
	return 100 * float64(hits) / float64(total), true
}

func fatal(err error) {
	cli.Fatal("coremaptop", err)
}
