// Command thermchan demonstrates the inter-core thermal covert channel on
// a mapped (simulated) Xeon instance.
//
// Usage:
//
//	thermchan [-sku name] [-seed n] [-rate bps] [-bits n] [-timeout d]
//	          [-senders n] [-channels n] [-hops n] [-horizontal]
//
// The tool first recovers the instance's physical core map with the full
// locating pipeline (the capability the paper adds over lstopo guessing),
// then places senders and receivers on map-adjacent tiles and transfers a
// random payload, reporting the achieved bit error rate.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"coremap"
	"coremap/internal/cli"
	"coremap/internal/covert"
	"coremap/internal/machine"
	"coremap/internal/probe"
)

// tel is package-level so fatal can flush the flight recorder before the
// process exits (os.Exit skips the deferred Close in main).
var tel *cli.Telemetry

func main() {
	var (
		skuName    = flag.String("sku", "8259CL", "CPU model: 8124M, 8175M, 8259CL or 6354")
		seed       = flag.Int64("seed", 1, "instance seed")
		rate       = flag.Float64("rate", 2, "bit rate per channel (bps)")
		bits       = flag.Int("bits", 256, "payload bits per channel")
		senders    = flag.Int("senders", 1, "synchronized senders around one receiver")
		channels   = flag.Int("channels", 1, "parallel channels (ignores -senders when >1)")
		hops       = flag.Int("hops", 1, "sender-receiver tile distance")
		horizontal = flag.Bool("horizontal", false, "place the pair horizontally instead of vertically")
		registry   = flag.String("registry", "", "JSON registry file with a cached map for this PPIN (skips the root-level probe)")
		timeout    = flag.Duration("timeout", 0, "abort mapping and transfer after this duration (exit code 2)")
	)
	tel = cli.TelemetryFlags()
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	ctx, err := tel.Start(ctx)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := tel.Close(os.Stdout, ctx.Err()); err != nil {
			fmt.Fprintln(os.Stderr, "thermchan:", err)
		}
	}()

	sku := map[string]*machine.SKU{
		"8124M": machine.SKU8124M, "8175M": machine.SKU8175M,
		"8259CL": machine.SKU8259CL, "6354": machine.SKU6354,
	}[*skuName]
	if sku == nil {
		fatal(fmt.Errorf("unknown SKU %q", *skuName))
	}

	m := machine.Generate(sku, 0, machine.Config{Seed: *seed})
	res := lookupOrMap(ctx, m, sku, *seed, *registry)
	fmt.Printf("mapped %s (PPIN %#016x)\n", sku.Name, res.PPIN)

	plan := res.Planner()
	plat := covert.NewSimPlatform(m, covert.CloudThermalConfig(*seed))

	rng := rand.New(rand.NewSource(*seed + 99))
	payload := func() []bool {
		p := make([]bool, *bits)
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		return p
	}

	var specs []covert.ChannelSpec
	switch {
	case *channels > 1:
		pairs := plan.DisjointVerticalPairs(*channels)
		if len(pairs) < *channels {
			fatal(fmt.Errorf("only %d disjoint vertical pairs available", len(pairs)))
		}
		for _, pair := range pairs {
			specs = append(specs, covert.ChannelSpec{
				Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload(),
			})
		}
		fmt.Printf("×%d parallel vertical 1-hop channels at %g bps each\n", *channels, *rate)
	case *senders > 1:
		recv, err := plan.BestReceiver()
		if err != nil {
			fatal(err)
		}
		ring := plan.Ring(recv)
		if len(ring) < *senders {
			fatal(fmt.Errorf("receiver has only %d surrounding cores", len(ring)))
		}
		specs = []covert.ChannelSpec{{Senders: ring[:*senders], Receiver: recv, Payload: payload()}}
		fmt.Printf("×%d synchronized senders around cpu %d at %g bps\n", *senders, recv, *rate)
	default:
		dr, dc := *hops, 0
		dir := "vertical"
		if *horizontal {
			dr, dc = 0, *hops
			dir = "horizontal"
		}
		pairs := plan.PairsAtOffset(dr, dc)
		if len(pairs) == 0 {
			fatal(fmt.Errorf("no %d-hop %s pair on this map", *hops, dir))
		}
		pair := pairs[len(pairs)/2]
		specs = []covert.ChannelSpec{{Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload()}}
		fmt.Printf("%d-hop %s channel cpu %d → cpu %d at %g bps\n", *hops, dir, pair[0], pair[1], *rate)
	}

	results, err := covert.Run(ctx, plat, specs, covert.Config{BitRate: *rate})
	if err != nil {
		fatal(err)
	}
	totalErrs, totalBits := 0, 0
	for i, r := range results {
		fmt.Printf("channel %d: synced=%v BER=%.4f (%d/%d bits wrong)\n",
			i, r.Synced, r.BER, r.BitErrors, len(r.Sent))
		totalErrs += r.BitErrors
		totalBits += len(r.Sent)
	}
	if len(results) > 1 {
		fmt.Printf("aggregate: %g bps at BER %.4f\n",
			float64(len(results))**rate, float64(totalErrs)/float64(totalBits))
	}
}

// lookupOrMap reuses a registry-cached map when available — the paper's
// threat model: the probe ran once with root, and the covert channel runs
// user-level forever after — and falls back to a fresh mapping run.
func lookupOrMap(ctx context.Context, m *machine.Machine, sku *machine.SKU, seed int64, registryPath string) *coremap.Result {
	if registryPath != "" {
		if f, err := os.Open(registryPath); err == nil {
			defer f.Close()
			if reg, err := coremap.LoadRegistry(f); err == nil {
				if p, err := probe.New(m, probe.Options{}); err == nil {
					if ppin, err := p.ReadPPIN(ctx); err == nil {
						if cached, ok := reg.Lookup(ppin); ok {
							fmt.Fprintln(os.Stderr, "thermchan: using registry-cached map")
							return cached
						}
					}
				}
			}
		}
	}
	res, err := coremap.MapMachine(ctx, m, coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC},
		coremap.Options{Probe: probe.Options{Seed: seed}})
	if err != nil {
		fatal(err)
	}
	return res
}

func fatal(err error) {
	tel.Fatal("thermchan", err)
}
