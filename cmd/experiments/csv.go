package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"coremap/internal/experiments"
)

// csvWriters produce plot-ready CSV files for the figure experiments when
// -csv <dir> is given.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeFig6CSV(dir string, res *experiments.Fig6Result) error {
	header := []string{"t_seconds", "sender_c"}
	for h := range res.HopTraces {
		header = append(header, fmt.Sprintf("hop%d_c", h+1))
	}
	var rows [][]string
	for k := range res.SenderTrace {
		row := []string{ftoa(float64(k) / 100), ftoa(res.SenderTrace[k])}
		for _, tr := range res.HopTraces {
			if k < len(tr) {
				row = append(row, ftoa(tr[k]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return writeCSV(dir, "fig6_trace.csv", header, rows)
}

func writeFig7CSV(dir, name string, cells []experiments.Fig7Cell) error {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{strconv.Itoa(c.Hops), ftoa(c.BitRate), ftoa(c.BER)})
	}
	return writeCSV(dir, name, []string{"hops", "bps", "ber"}, rows)
}

func writeFig8aCSV(dir string, cells []experiments.Fig8aCell) error {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{strconv.Itoa(c.Senders), ftoa(c.BitRate), ftoa(c.BER)})
	}
	return writeCSV(dir, "fig8a_multisender.csv", []string{"senders", "bps", "ber"}, rows)
}

func writeFig8bCSV(dir string, cells []experiments.Fig8bCell) error {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{
			strconv.Itoa(c.Channels), ftoa(c.PerRate), ftoa(c.Aggregate), ftoa(c.BER),
		})
	}
	return writeCSV(dir, "fig8b_multichannel.csv",
		[]string{"channels", "bps_per_channel", "aggregate_bps", "ber"}, rows)
}

func writeDefenseCSV(dir string, cells []experiments.DefenseCell) error {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{
			strconv.Itoa(c.ResolutionC), ftoa(c.UpdatePeriod), ftoa(c.BitRate), ftoa(c.BER),
		})
	}
	return writeCSV(dir, "defense.csv",
		[]string{"resolution_c", "update_period_s", "bps", "ber"}, rows)
}

func writeRobustnessCSV(dir string, cells []experiments.RobustnessCell) error {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{
			strconv.FormatUint(c.NoiseFlits, 10),
			ftoa(c.Step1Success), ftoa(c.MapExact), ftoa(c.MeanRelative),
			strconv.Itoa(c.Failures),
		})
	}
	return writeCSV(dir, "robustness.csv",
		[]string{"noise_flits", "step1_success", "map_exact", "mean_relative", "failures"}, rows)
}
