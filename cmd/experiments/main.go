// Command experiments regenerates the paper's tables and figures against
// the simulated Xeon population.
//
// Usage:
//
//	experiments -exp table1|table2|fig4|fig5|fig6|fig7a|fig7b|fig8a|fig8b|
//	                 verify|accuracy|defense|ecc|modulation|ablations|
//	                 plancompare|quick|all
//	            [-n instances] [-bits payload] [-seed n] [-quick] [-nocache]
//	            [-noplan] [-topology mesh|ring|noc]
//
// Full-size runs use the paper's parameters (100 instances per model,
// 10 Kbit payloads); -quick shrinks both for a fast pass. Survey
// measurements and reconstructions are cached by content across
// experiments (hit/miss statistics appear once, as "[cache]" lines at the
// end of the run); -nocache reproduces the uncached baseline. -noplan
// disables the adaptive measurement planner and surveys every core pair
// exhaustively — the maps are identical either way, only the host
// operation counts move. plancompare runs both modes back to back on one
// chip and exits non-zero unless the planned survey converged to a
// byte-identical map for at most one third of the exhaustive host
// operations (the CI smoke gate). quick surveys one seeded instance of
// the -topology backend's default SKU twice and exits non-zero unless
// the placement is exact, proven, and deterministic — the per-backend
// smoke gate; the paper-reproduction experiments themselves are
// mesh-only and ignore -topology.
//
// The shared telemetry flags (-trace, -metrics-out, -debug-addr, -report)
// emit the run's span trace, metrics snapshot, live debug endpoint and
// per-stage report; see README.md "Observability".
package main

import (
	"flag"
	"fmt"
	"os"

	"coremap/internal/cli"
	"coremap/internal/experiments"
)

// tel is package-level so fatal can flush the flight recorder before the
// process exits (os.Exit skips any deferred Close in main).
var tel *cli.Telemetry

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run")
		n        = flag.Int("n", 0, "instances per model (0 = paper's 100)")
		bits     = flag.Int("bits", 0, "covert payload bits (0 = paper's 10000)")
		seed     = flag.Int64("seed", 1, "survey seed")
		quick    = flag.Bool("quick", false, "shrink surveys and payloads")
		noCache  = flag.Bool("nocache", false, "disable the measurement/reconstruction caches (uncached baseline)")
		noPlan   = flag.Bool("noplan", false, "disable the adaptive measurement planner (exhaustive all-pairs survey)")
		topology = flag.String("topology", "mesh", "interconnect backend for -exp quick (mesh, ring or noc)")
		csvDir   = flag.String("csv", "", "directory to also write plot-ready CSV files into")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (exit code 2)")
	)
	tel = cli.TelemetryFlags()
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	ctx, err := tel.Start(ctx)
	if err != nil {
		fatal(err)
	}

	cfg := experiments.Config{
		Out:         os.Stdout,
		Instances:   *n,
		PayloadBits: *bits,
		Seed:        *seed,
		Quick:       *quick,
		NoCache:     *noCache,
		NoPlan:      *noPlan,
		Topology:    *topology,
	}
	if !*noCache {
		// One cache set across every experiment of the run, so e.g.
		// Fig. 4 reuses Table II's 8259CL survey wholesale.
		cfg.Caches = experiments.NewCaches()
		cfg.Caches.Register(tel.Registry())
	}

	// maybeCSV runs the writer only when -csv was given.
	maybeCSV := func(write func(dir string) error) error {
		if *csvDir == "" {
			return nil
		}
		return write(*csvDir)
	}

	runners := map[string]func() error{
		"table1": func() error { _, err := experiments.Table1(ctx, cfg); return err },
		"table2": func() error { _, err := experiments.Table2(ctx, cfg); return err },
		"fig4":   func() error { _, err := experiments.Fig4(ctx, cfg); return err },
		"fig5":   func() error { _, err := experiments.Fig5(ctx, cfg); return err },
		"fig6": func() error {
			res, err := experiments.Fig6(ctx, cfg)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeFig6CSV(dir, res) })
		},
		"fig7a": func() error {
			cells, err := experiments.Fig7(ctx, cfg, false)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeFig7CSV(dir, "fig7a_horizontal.csv", cells) })
		},
		"fig7b": func() error {
			cells, err := experiments.Fig7(ctx, cfg, true)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeFig7CSV(dir, "fig7b_vertical.csv", cells) })
		},
		"fig8a": func() error {
			cells, err := experiments.Fig8a(ctx, cfg)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeFig8aCSV(dir, cells) })
		},
		"fig8b": func() error {
			cells, _, err := experiments.Fig8b(ctx, cfg)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeFig8bCSV(dir, cells) })
		},
		"verify": func() error { _, err := experiments.Verify(ctx, cfg); return err },
		"accuracy": func() error {
			_, err := experiments.Accuracy(ctx, cfg)
			return err
		},
		"defense": func() error {
			cells, err := experiments.Defense(ctx, cfg)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeDefenseCSV(dir, cells) })
		},
		"ecc":        func() error { _, err := experiments.ECC(ctx, cfg); return err },
		"modulation": func() error { _, err := experiments.Modulation(ctx, cfg); return err },
		"ablations":  func() error { _, err := experiments.Ablations(ctx, cfg); return err },
		"robustness": func() error {
			cells, err := experiments.Robustness(ctx, cfg)
			if err != nil {
				return err
			}
			return maybeCSV(func(dir string) error { return writeRobustnessCSV(dir, cells) })
		},
		"plancompare": func() error {
			r, err := experiments.PlanCompare(ctx, cfg)
			if err != nil {
				return err
			}
			// The CI smoke gate: the planner must converge to the same
			// map the exhaustive survey finds, for at most a third of
			// the host operations.
			switch {
			case !r.Identical:
				return fmt.Errorf("plancompare: planned map differs from exhaustive map")
			case !r.Converged:
				return fmt.Errorf("plancompare: planned survey did not converge (fell back to exhaustive measurement)")
			case r.Ratio > 1.0/3.0:
				return fmt.Errorf("plancompare: planned survey used %.1f%% of exhaustive host ops, gate is 33.3%%", r.Ratio*100)
			}
			return nil
		},
		"quick": func() error {
			r, err := experiments.Quick(ctx, cfg)
			if err != nil {
				return err
			}
			// The per-backend CI smoke gate: the survey must recover the
			// seeded instance exactly, prove it, and reproduce it.
			switch {
			case !r.Survey.Exact:
				return fmt.Errorf("quick: %s placement is not exact", r.Survey.Backend)
			case !r.Survey.Optimal:
				return fmt.Errorf("quick: %s solver did not prove the placement", r.Survey.Backend)
			case !r.Deterministic:
				return fmt.Errorf("quick: %s survey is not deterministic", r.Survey.Backend)
			}
			return nil
		},
	}
	order := []string{
		"table1", "table2", "fig4", "fig5", "fig6", "fig7a", "fig7b",
		"fig8a", "fig8b", "verify", "accuracy",
		"defense", "ecc", "modulation", "ablations", "robustness",
		"plancompare", "quick",
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n===== %s =====\n", name)
			if err := runners[name](); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
	} else {
		run, ok := runners[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		if err := run(); err != nil {
			fatal(err)
		}
	}

	cli.WriteCacheStats(os.Stdout, tel.Registry().Snapshot())
	if err := tel.Close(os.Stdout, nil); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	tel.Fatal("experiments", err)
}
