// Command coremap maps the physical core locations of a (simulated) Xeon
// CPU instance and prints the recovered tile grid.
//
// Usage:
//
//	coremap [-topology mesh|ring|noc] [-sku name] [-pattern n] [-seed n] [-workers n] [-timeout d] [-paper-faithful] [-check] [-json] [-nocache]
//	        [-noplan] [-ambiguity-cap n]
//	        [-trace file] [-metrics-out file] [-debug-addr addr] [-report]
//
// The tool generates one simulated CPU instance (internal/machine stands in
// for bare-metal hardware; see DESIGN.md), runs the three-step locating
// pipeline through the hostif.Host abstraction, and prints the OS-core-ID ↔
// CHA-ID mapping plus the reconstructed map. With -check it also scores the
// reconstruction against the simulator's ground truth.
//
// -topology selects the interconnect backend. The default mesh drives the
// full MSR/PMON pipeline described above with every flag available; ring
// (slotted-ring contention ordering) and noc (harvested NoC grid with
// anchor tiles) run the selected backend's seeded quick survey instead,
// honoring -sku (the backend's own catalog), -seed and -json.
//
// By default the survey is planned adaptively: experiments run in batches
// chosen to split the set of placements consistent with what has been
// observed, and measurement stops once the answer cannot change — the map
// is byte-identical to the exhaustive one for a fraction of the host
// operations. -noplan restores the exhaustive all-pairs survey;
// -ambiguity-cap bounds how many surviving placements the planner tracks
// before it falls back to exhaustive measurement.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"coremap"
	"coremap/internal/cli"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/plan"
	"coremap/internal/probe"
	"coremap/internal/topo"
	_ "coremap/internal/topo/backends"
)

// tel is package-level so fatal can flush the flight recorder before the
// process exits (os.Exit skips the deferred Close in main).
var tel *cli.Telemetry

func main() {
	var (
		topology      = flag.String("topology", "mesh", "interconnect backend: mesh, ring or noc")
		skuName       = flag.String("sku", "", "SKU from the backend's catalog (mesh default 8259CL: 8124M, 8175M, 8259CL or 6354)")
		pattern       = flag.Int("pattern", 0, "fusing-pattern index of the instance")
		seed          = flag.Int64("seed", 1, "instance seed (PPIN, slice hash, noise)")
		paperFaithful = flag.Bool("paper-faithful", false, "use only the paper's core-pair experiments")
		anchors       = flag.Bool("anchors", false, "add memory-anchored (IMC→core) experiments for an absolute map")
		check         = flag.Bool("check", false, "score the map against simulator ground truth")
		workers       = flag.Int("workers", 0, "ILP solver workers (0 = all cores); the map is identical at any setting")
		asJSON        = flag.Bool("json", false, "emit the result as JSON")
		noCache       = flag.Bool("nocache", false, "disable the in-process measurement/reconstruction caches")
		noPlan        = flag.Bool("noplan", false, "survey every core pair exhaustively instead of planning adaptively")
		ambiguityCap  = flag.Int("ambiguity-cap", 0, "max surviving placements the planner tracks (0 = default 256)")
		registryPath  = flag.String("registry", "", "JSON registry file: reuse a cached map for this PPIN, store new maps")
		timeout       = flag.Duration("timeout", 0, "abort the pipeline after this duration (exit code 2)")
	)
	tel = cli.TelemetryFlags()
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	ctx, err := tel.Start(ctx)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := tel.Close(os.Stdout, ctx.Err()); err != nil {
			fmt.Fprintln(os.Stderr, "coremap:", err)
		}
	}()

	if *topology != "mesh" {
		// Non-mesh substrates have no MSR/PMON pipeline; run the
		// backend's seeded quick survey through the registry instead.
		runBackendSurvey(ctx, *topology, *skuName, *seed, *asJSON)
		return
	}

	sku, err := findSKU(*skuName)
	if err != nil {
		fatal(err)
	}
	m := machine.Generate(sku, *pattern, machine.Config{Seed: *seed})
	registry := loadRegistry(*registryPath)

	popts := probe.Options{Seed: *seed}
	lopts := locate.Options{Workers: *workers}
	if *ambiguityCap > 0 && !*noPlan {
		// A non-default cap needs explicit planner options; otherwise
		// MapMachine derives them from the die geometry.
		popts.Plan = &plan.Options{
			Rows: sku.Rows, Cols: sku.Cols, IMCPositions: sku.IMC,
			AmbiguityCap: *ambiguityCap,
		}
	}
	if !*noCache {
		popts.Cache = probe.NewResultCache()
		lopts.Cache = locate.NewCache()
		popts.Cache.Register(tel.Registry())
		lopts.Cache.Register(tel.Registry())
	}

	var res *coremap.Result
	if cached, ok := cachedResult(ctx, registry, m); ok {
		fmt.Fprintln(os.Stderr, "coremap: using map cached in registry for this PPIN")
		res = cached
	} else {
		var err error
		res, err = coremap.MapMachine(ctx, m, coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}, coremap.Options{
			Probe:         popts,
			Locate:        lopts,
			PaperFaithful: *paperFaithful,
			MemoryAnchors: *anchors,
			NoPlan:        *noPlan,
		})
		if err != nil {
			fatal(err)
		}
		if popts.Cache != nil {
			cli.WriteCacheStats(os.Stderr, tel.Registry().Snapshot())
		}
		if registry != nil {
			registry.Store(res)
			saveRegistry(*registryPath, registry)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s instance (PPIN %#016x)\n\n", sku.Name, res.PPIN)
	fmt.Printf("OS core ID → CHA ID: %v\n\n", res.OSToCHA)
	fmt.Printf("Recovered core map (OS/CHA; dots are tiles with no active CHA):\n%s\n", res.Render())
	fmt.Printf("ILP: optimal=%v, %d search nodes\n", res.Optimal, res.SolverNodes)
	if res.Degraded {
		fmt.Printf("DEGRADED: measurement coverage %.1f%% (host faults dropped experiments)\n", res.Coverage*100)
	}

	if *check {
		tr := make([]mesh.Coord, m.NumCHAs())
		for cha := range tr {
			tr[cha] = m.TrueCHACoord(cha)
		}
		if res.Anchored {
			exact, correct := locate.ScoreAbsolute(res.Pos, tr)
			fmt.Printf("ground truth (absolute): exact=%v, %d/%d tiles\n", exact, correct, len(tr))
		} else {
			exact, correct := locate.Score(res.Pos, tr)
			rel := locate.RelativeScore(res.Pos, tr)
			fmt.Printf("ground truth: exact=%v, %d/%d tiles, relative order %.3f\n",
				exact, correct, len(tr), rel)
		}
	}
}

func findSKU(name string) (*machine.SKU, error) {
	if name == "" {
		name = "8259CL"
	}
	aliases := map[string]*machine.SKU{
		"8124M":  machine.SKU8124M,
		"8175M":  machine.SKU8175M,
		"8259CL": machine.SKU8259CL,
		"6354":   machine.SKU6354,
	}
	if sku, ok := aliases[name]; ok {
		return sku, nil
	}
	return nil, fmt.Errorf("unknown SKU %q (use 8124M, 8175M, 8259CL or 6354)", name)
}

// runBackendSurvey drives a non-mesh topology backend: resolve it from
// the registry, survey one seeded instance of the requested SKU (""=the
// backend's default) and print the outcome.
func runBackendSurvey(ctx context.Context, name, sku string, seed int64, asJSON bool) {
	b, err := topo.Lookup(name)
	if err != nil {
		fatal(err)
	}
	res, err := b.QuickSurvey(ctx, sku, seed)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s backend, SKU %s (seed %d)\n\n", res.Backend, res.SKU, seed)
	fmt.Printf("agents=%d observations=%d host_ops=%d\n", res.Agents, res.Observations, res.HostOps)
	fmt.Printf("exact=%v optimal=%v\n\n", res.Exact, res.Optimal)
	fmt.Printf("Recovered placement:\n%s", res.Rendered)
}

// loadRegistry opens the registry file; a missing file starts empty and a
// missing path disables caching.
func loadRegistry(path string) *coremap.Registry {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return coremap.NewRegistry()
		}
		fatal(err)
	}
	defer f.Close()
	reg, err := coremap.LoadRegistry(f)
	if err != nil {
		fatal(err)
	}
	return reg
}

// cachedResult looks the machine's PPIN up in the registry, reading the
// PPIN the same way the probe would.
func cachedResult(ctx context.Context, reg *coremap.Registry, m *machine.Machine) (*coremap.Result, bool) {
	if reg == nil {
		return nil, false
	}
	p, err := probe.New(m, probe.Options{})
	if err != nil {
		return nil, false
	}
	ppin, err := p.ReadPPIN(ctx)
	if err != nil {
		return nil, false
	}
	return reg.Lookup(ppin)
}

func saveRegistry(path string, reg *coremap.Registry) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := reg.Save(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	tel.Fatal("coremap", err)
}
