// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report on stdout, so results can be archived and diffed across
// runs (see the `bench-json` Makefile target, which writes
// BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_2026-08-05.json
//
// Every "Benchmark..." result line becomes one entry: the benchmark name
// (GOMAXPROCS suffix stripped), the iteration count, ns/op, and every
// remaining value/unit pair — allocation stats and the custom
// b.ReportMetric quantities the table/figure benchmarks emit — keyed by
// unit in a metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"coremap/internal/benchfmt"
	"coremap/internal/cli"
	"coremap/internal/cmerr"
	"coremap/internal/obs"
)

// The report schema lives in internal/benchfmt, shared with cmd/benchdiff
// so the regression gate reads exactly what this command writes.
type (
	Report    = benchfmt.Report
	Benchmark = benchfmt.Benchmark
)

// gomaxprocsSuffix matches the "-8" style suffix the testing package
// appends to benchmark names when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine converts one "BenchmarkFoo-8  10  123 ns/op  4.0 things" line;
// ok is false for non-benchmark lines (headers, PASS, ok ...).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
		Runs: runs,
	}
	// The rest of the line is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, true
}

// parse consumes a full `go test -bench` transcript.
func parse(lines []string) Report {
	rep := Report{Date: time.Now().Format("2006-01-02")}
	header := func(line, key string) (string, bool) {
		if rest, ok := strings.CutPrefix(line, key+": "); ok {
			return strings.TrimSpace(rest), true
		}
		return "", false
	}
	for _, line := range lines {
		if v, ok := header(line, "goos"); ok {
			rep.GoOS = v
		} else if v, ok := header(line, "goarch"); ok {
			rep.GoArch = v
		} else if v, ok := header(line, "pkg"); ok {
			rep.Pkg = v
		} else if v, ok := header(line, "cpu"); ok {
			rep.CPU = v
		} else if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep
}

func main() {
	timeout := flag.Duration("timeout", 0, "give up waiting for stdin after this duration (exit code 2)")
	tel := cli.TelemetryFlags()
	flag.Parse()
	ctx, stop := cli.Context(*timeout)
	defer stop()
	ctx, err := tel.Start(ctx)
	if err != nil {
		cli.Fatal("benchjson", err)
	}
	_, span := obs.Start(ctx, "benchjson/convert")
	defer func() {
		span.End(nil)
		if err := tel.Close(os.Stderr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
		}
	}()

	// The transcript arrives on stdin from a (possibly long) benchmark run;
	// read it off the main goroutine so a signal or -timeout can interrupt
	// the wait — a blocked os.Stdin read is not otherwise cancellable.
	type scanned struct {
		lines []string
		err   error
	}
	done := make(chan scanned, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		done <- scanned{lines, sc.Err()}
	}()
	var lines []string
	select {
	case <-ctx.Done():
		span.End(nil)
		tel.Fatal("benchjson", cmerr.FromContext(ctx, "benchjson"))
	case got := <-done:
		if got.err != nil {
			span.End(nil)
			tel.Fatal("benchjson", got.err)
		}
		lines = got.lines
	}
	rep := parse(lines)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
