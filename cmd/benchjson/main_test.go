package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	lines := []string{
		"goos: linux",
		"goarch: amd64",
		"pkg: coremap",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkPipeline_FullMap/cache=off-8 \t       3\t  87710508 ns/op",
		"BenchmarkPipeline_FullMap/cache=on-8  \t       3\t    367127 ns/op",
		"BenchmarkTable2_PatternStats-8 \t 2\t 1234 ns/op\t 3.000 patterns-8124M\t 9.000 patterns-8259CL",
		"BenchmarkMesh_Route \t 1000000\t 85.2 ns/op\t 16 B/op\t 1 allocs/op",
		"PASS",
		"ok  \tcoremap\t17.982s",
	}
	rep := parse(lines)
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "coremap" {
		t.Errorf("headers not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkPipeline_FullMap/cache=off" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Runs != 3 || b.NsPerOp != 87710508 {
		t.Errorf("runs/ns mis-parsed: %+v", b)
	}
	tbl := rep.Benchmarks[2]
	if tbl.Metrics["patterns-8124M"] != 3 || tbl.Metrics["patterns-8259CL"] != 9 {
		t.Errorf("custom metrics mis-parsed: %+v", tbl.Metrics)
	}
	mesh := rep.Benchmarks[3]
	if mesh.Metrics["B/op"] != 16 || mesh.Metrics["allocs/op"] != 1 {
		t.Errorf("-benchmem metrics mis-parsed: %+v", mesh.Metrics)
	}
	if mesh.NsPerOp != 85.2 {
		t.Errorf("fractional ns/op mis-parsed: %v", mesh.NsPerOp)
	}
}

func TestParseLineRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tcoremap\t17.982s",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken 	 notanumber 	 12 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
