// Command benchdiff compares a fresh benchjson report against a
// checked-in baseline and fails when any benchmark regressed beyond the
// threshold in a gated metric: wall time (ns_per_op), allocation count
// (allocs/op), host operations per converged map (host-ops/map), or the
// covert channel's reliable rate (bps-under-1pct). The gate is
// direction-aware — cost metrics fail on increases, capacity metrics on
// decreases, and movement in the good direction never fails. It is the
// CI bench-gate: a PR that reintroduces an allocation firehose or
// quietly re-inflates the survey cost turns the gate red even though
// every correctness test still passes.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson > bench.json
//	go run ./cmd/benchdiff -baseline BENCH_2026-08-08.json -current bench.json
//
// With no -baseline the newest BENCH_*.json in the working directory is
// used. -threshold is a fraction (default 0.15 = fail beyond +15%).
// -ns-floor (default 50ms, 0 disables) exempts wall time from gating for
// benchmarks where both baseline and current run shorter than the floor:
// a single iteration of a sub-50ms benchmark on a shared runner measures
// timer overhead, cold caches and co-tenant contention more than it
// measures the code — identical binaries swing multiple-x run to run —
// while the deterministic allocs/op and host-ops/map halves of the gate
// keep those benchmarks tightly gated. Exempted deltas are still printed,
// flagged "below ns floor", and a real blowup is still caught because it
// pushes the current value past the floor.
// When -summary names a file — or GITHUB_STEP_SUMMARY is set, as it is
// in GitHub Actions — a markdown delta table is appended there; the
// plain-text table always goes to stdout. Exit codes: 0 clean, 1 at
// least one regression, 2 usage or I/O failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"coremap/internal/benchfmt"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report (default: newest BENCH_*.json in the working directory)")
	current := flag.String("current", "", "current report to compare (required)")
	threshold := flag.Float64("threshold", 0.15, "regression gate as a fraction of the baseline value")
	nsFloor := flag.Duration("ns-floor", 50*time.Millisecond,
		"exempt ns_per_op from gating when baseline and current are both below this duration (0 = gate all)")
	summary := flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"),
		"append a markdown delta table to this file (default: $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if *current == "" {
		fail(fmt.Errorf("-current is required (a benchjson report)"))
	}
	if *threshold <= 0 {
		fail(fmt.Errorf("-threshold must be positive, got %v", *threshold))
	}
	if *baseline == "" {
		b, err := newestBaseline(".")
		if err != nil {
			fail(err)
		}
		*baseline = b
	}

	base, err := benchfmt.Load(*baseline)
	if err != nil {
		fail(err)
	}
	cur, err := benchfmt.Load(*current)
	if err != nil {
		fail(err)
	}

	deltas, missing, fresh := benchfmt.Diff(base, cur, *threshold, float64(nsFloor.Nanoseconds()))
	if len(deltas) == 0 && len(missing) == 0 && len(fresh) == 0 {
		fail(fmt.Errorf("no benchmarks in common between %s and %s", *baseline, *current))
	}
	fmt.Printf("baseline %s (%s) vs current %s\n\n", *baseline, base.Date, *current)
	fmt.Print(benchfmt.Text(deltas, missing, fresh))

	if *summary != "" {
		md := benchfmt.Markdown(deltas, missing, fresh, *threshold)
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fail(err)
		}
		if _, err := f.WriteString(md); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if reg := benchfmt.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond +%.0f%%\n",
			len(reg), *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond +%.0f%%\n", *threshold*100)
}

// newestBaseline picks the lexicographically last BENCH_*.json in dir —
// the filenames embed ISO dates, so lexicographic order is date order.
func newestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline in %s (pass -baseline)", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}
