package coremap_test

// Planner equivalence property: the adaptive measurement planner may
// skip experiments, but it must never change the answer. Across the
// determinism corpus of catalog SKUs, seeds and solver worker counts —
// and under a 2% injected transient-fault rate — the planned survey's
// map must be byte-identical to the exhaustive survey's.

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"coremap"
	"coremap/internal/cmerr"
	"coremap/internal/faulty"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// mapIdentity is the part of a Result the planner must reproduce
// exactly: the recovered placement, the OS↔CHA mapping and whether the
// map is anchored. Solver effort differs by construction (fewer
// observations make a harder ILP) and is deliberately excluded.
type mapIdentity struct {
	Pos      []mesh.Coord
	OSToCHA  []int
	Anchored bool
}

func identity(r *coremap.Result) mapIdentity {
	return mapIdentity{Pos: r.Pos, OSToCHA: r.OSToCHA, Anchored: r.Anchored}
}

func TestPlannedSurveyMatchesExhaustive(t *testing.T) {
	skus := []*machine.SKU{machine.SKU8124M, machine.SKU8175M, machine.SKU8259CL}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, sku := range skus {
		for seed := int64(1); seed <= 2; seed++ {
			for _, workers := range workerCounts {
				m := machine.Generate(sku, int(seed)%4, machine.Config{Seed: seed})
				die := coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}
				run := func(noPlan bool) *coremap.Result {
					t.Helper()
					res, err := coremap.MapMachine(context.Background(), m, die, coremap.Options{
						Probe:  probe.Options{Seed: seed},
						Locate: locate.Options{Workers: workers},
						NoPlan: noPlan,
					})
					if err != nil {
						t.Fatalf("%s seed %d workers %d noPlan=%v: %v",
							sku.Name, seed, workers, noPlan, err)
					}
					return res
				}
				planned, exhaustive := run(false), run(true)
				if !reflect.DeepEqual(identity(planned), identity(exhaustive)) {
					t.Errorf("%s seed %d workers %d: planned map differs from exhaustive\nplanned:    %+v\nexhaustive: %+v",
						sku.Name, seed, workers, identity(planned), identity(exhaustive))
				}
			}
		}
	}
}

// TestPlannedSurveyMatchesExhaustiveUnderFaults re-runs the equivalence
// check with a seeded injector failing 2% of host operations with
// transient faults. The per-operation retry budget absorbs the faults —
// at 6 retries the chance of dropping any operation across the whole
// survey is ~1e-7 — so both surveys complete undegraded and the maps
// must still match byte for byte: the planner's fallback ladder must
// not be tripped into a different answer by retried noise. (At the
// default 3 retries a quarter-million-op exhaustive survey drops an
// experiment a few percent of the time; degradation under faults is
// faulttolerance_test.go's subject, not this property's.)
func TestPlannedSurveyMatchesExhaustiveUnderFaults(t *testing.T) {
	sku := machine.SKU8259CL
	for seed := int64(40); seed < 43; seed++ {
		m := machine.Generate(sku, int(seed)%4, machine.Config{Seed: seed})
		fh := faulty.New(m, faulty.Options{Seed: seed, Rate: 0.02})
		die := coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}
		run := func(noPlan bool) *coremap.Result {
			t.Helper()
			res, err := coremap.MapMachine(context.Background(), fh, die, coremap.Options{
				Probe:  probe.Options{Seed: seed, RetryBackoff: time.Microsecond, OpRetries: 6},
				NoPlan: noPlan,
			})
			if err != nil && !cmerr.IsDegraded(err) {
				t.Fatalf("seed %d noPlan=%v: hard error under 2%% faults: %v", seed, noPlan, err)
			}
			if res == nil {
				t.Fatalf("seed %d noPlan=%v: no result", seed, noPlan)
			}
			return res
		}
		planned, exhaustive := run(false), run(true)
		if fh.Injected() == 0 {
			t.Fatalf("seed %d: injector never fired; the test exercised nothing", seed)
		}
		if planned.Degraded || exhaustive.Degraded {
			// Retries make degradation vanishingly unlikely; a seed that
			// trips it would compare maps built from different
			// measurement sets, which is not this test's property.
			t.Fatalf("seed %d: degraded result under transient faults (planned=%v exhaustive=%v)",
				seed, planned.Degraded, exhaustive.Degraded)
		}
		if !reflect.DeepEqual(identity(planned), identity(exhaustive)) {
			t.Errorf("seed %d: planned map differs from exhaustive under 2%% faults\nplanned:    %+v\nexhaustive: %+v",
				seed, identity(planned), identity(exhaustive))
		}
	}
}
