package coremap_test

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the load-bearing components. The table/figure
// benchmarks run the same harness as cmd/experiments at reduced survey and
// payload sizes and report the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` regenerates every result in one pass;
// full-size runs (100 instances, 10 Kbit payloads) are
// `go run ./cmd/experiments -exp all`.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"coremap"
	"coremap/internal/covert"
	"coremap/internal/experiments"
	"coremap/internal/ilp"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/probe"
	"coremap/internal/thermal"
	"coremap/internal/topo"
	_ "coremap/internal/topo/backends"
)

func benchConfig(b *testing.B) experiments.Config {
	b.Helper()
	return experiments.Config{Quick: true, Seed: 1, Instances: 20, PayloadBits: 300}
}

// BenchmarkTable1_CHAIDMapping regenerates Table I: the distinct measured
// OS-core-ID ↔ CHA-ID mappings per CPU model. cache=off is the uncached
// baseline; cache=on re-runs the survey against a warmed content-addressed
// cache, the steady state of repeated surveys over one population.
func BenchmarkTable1_CHAIDMapping(b *testing.B) {
	bench := func(b *testing.B, cfg experiments.Config) {
		var res []experiments.Table1Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = experiments.Table1(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range res {
			switch r.SKU {
			case "Xeon Platinum 8124M":
				b.ReportMetric(float64(len(r.Rows)), "mappings-8124M")
			case "Xeon Platinum 8175M":
				b.ReportMetric(float64(len(r.Rows)), "mappings-8175M")
			case "Xeon Platinum 8259CL":
				b.ReportMetric(float64(len(r.Rows)), "mappings-8259CL")
			}
		}
	}
	b.Run("cache=off", func(b *testing.B) {
		cfg := benchConfig(b)
		cfg.NoCache = true
		bench(b, cfg)
	})
	b.Run("cache=on", func(b *testing.B) {
		cfg := benchConfig(b)
		cfg.Caches = experiments.NewCaches()
		if _, err := experiments.Table1(context.Background(), cfg); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		bench(b, cfg)
	})
}

// BenchmarkTable2_PatternStats regenerates Table II: location-pattern
// frequency statistics per CPU model.
func BenchmarkTable2_PatternStats(b *testing.B) {
	var res []experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table2(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		switch r.SKU {
		case "Xeon Platinum 8124M":
			b.ReportMetric(float64(r.Unique), "patterns-8124M")
		case "Xeon Platinum 8259CL":
			b.ReportMetric(float64(r.Unique), "patterns-8259CL")
		}
	}
}

// BenchmarkFig4_TopPatterns renders the three most frequent 8259CL maps.
func BenchmarkFig4_TopPatterns(b *testing.B) {
	var rendered int
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Fig4(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		rendered = len(grids)
	}
	b.ReportMetric(float64(rendered), "patterns-rendered")
}

// BenchmarkFig5_IceLakeMapping maps ten Ice Lake instances.
func BenchmarkFig5_IceLakeMapping(b *testing.B) {
	var unique int
	var relative float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		unique, relative = res.Unique, res.RelativeScore
	}
	b.ReportMetric(float64(unique), "unique-patterns")
	b.ReportMetric(relative, "relative-order")
}

// BenchmarkFig6_ThermalTrace runs the multi-hop trace experiment.
func BenchmarkFig6_ThermalTrace(b *testing.B) {
	var hopBER []float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		hopBER = res.HopBER
	}
	if len(hopBER) > 0 {
		b.ReportMetric(hopBER[0], "BER-1hop")
	}
	if len(hopBER) > 1 {
		b.ReportMetric(hopBER[len(hopBER)-1], "BER-farthest")
	}
}

// BenchmarkFig7_HopCounts sweeps BER vs rate for horizontal and vertical
// pairs at 1-3 hops.
func BenchmarkFig7_HopCounts(b *testing.B) {
	var vertBER, horzBER float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(b)
		vert, err := experiments.Fig7(context.Background(), cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		horz, err := experiments.Fig7(context.Background(), cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range vert {
			if c.Hops == 1 && c.BitRate == 4 {
				vertBER = c.BER
			}
		}
		for _, c := range horz {
			if c.Hops == 1 && c.BitRate == 4 {
				horzBER = c.BER
			}
		}
	}
	b.ReportMetric(vertBER, "BER-vert-1hop-4bps")
	b.ReportMetric(horzBER, "BER-horz-1hop-4bps")
}

// BenchmarkFig8a_MultiSender sweeps sender counts.
func BenchmarkFig8a_MultiSender(b *testing.B) {
	var ber4, ber1 float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig8a(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Senders == 4 && c.BitRate == 4 {
				ber4 = c.BER
			}
			if c.Senders == 1 && c.BitRate == 4 {
				ber1 = c.BER
			}
		}
	}
	b.ReportMetric(ber4, "BER-x4-4bps")
	b.ReportMetric(ber1, "BER-x1-4bps")
}

// BenchmarkFig8b_MultiChannel sweeps parallel-channel configurations and
// reports the paper's headline: maximum aggregate throughput under 1% BER.
func BenchmarkFig8b_MultiChannel(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		var err error
		_, best, err = experiments.Fig8b(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best, "bps-under-1pct")
}

// BenchmarkVerify_AllPairs reruns the Sec. V-D adjacency verification.
func BenchmarkVerify_AllPairs(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Verify(context.Background(), benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		frac = float64(res.AdjacentBest) / float64(res.Receivers)
	}
	b.ReportMetric(frac, "adjacent-fraction")
}

// BenchmarkBaselines compares the pipeline against lstopo guessing,
// pattern generalization and latency trilateration.
func BenchmarkBaselines(b *testing.B) {
	var pipeline, patternGen, lstopo float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(b)
		cfg.Instances = 6
		res, err := experiments.Accuracy(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.SKU == "Xeon Platinum 8259CL" {
				pipeline = r.MeanTileAccuracy
				patternGen = r.PatternGenAccuracy
				lstopo = r.LstopoAccuracy
			}
		}
	}
	b.ReportMetric(pipeline, "pipeline-accuracy")
	b.ReportMetric(patternGen, "patterngen-accuracy")
	b.ReportMetric(lstopo, "lstopo-accuracy")
}

// --- micro-benchmarks of the load-bearing components ---

// BenchmarkPipeline_FullMap is one complete probe + ILP run per iteration,
// cycling through a 20-instance 8259CL survey population. cache=off maps
// each machine from scratch; cache=on serves repeat encounters of a chip
// from the PPIN-keyed measurement cache and the content-addressed
// reconstruction cache (warmed by one pass, i.e. the steady state once the
// survey has seen the population).
func BenchmarkPipeline_FullMap(b *testing.B) {
	const surveySize = 20
	pop := machine.NewPopulation(machine.SKU8259CL, 1, machine.Config{})
	machines := make([]*machine.Machine, surveySize)
	for i := range machines {
		machines[i], _ = pop.Next()
	}
	run := func(b *testing.B, opts coremap.Options) {
		for i := 0; i < b.N; i++ {
			m := machines[i%len(machines)]
			if _, err := coremap.MapMachine(context.Background(), m, coremap.SkylakeXCCDie, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cache=off", func(b *testing.B) {
		run(b, coremap.Options{Probe: probe.Options{Seed: 1}})
	})
	b.Run("cache=on", func(b *testing.B) {
		opts := coremap.Options{
			Probe:  probe.Options{Seed: 1, Cache: probe.NewResultCache()},
			Locate: locate.Options{Cache: locate.NewCache()},
		}
		for _, m := range machines { // warm
			if _, err := coremap.MapMachine(context.Background(), m, coremap.SkylakeXCCDie, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		run(b, opts)
	})
}

// BenchmarkPipeline_PlannedSurvey compares the adaptive measurement
// planner against the exhaustive all-pairs survey on fresh 8259CL
// instances, caches off so every iteration pays the full measurement.
// Both sub-benchmarks report host-ops/map — the host operations one
// converged map costs — which the CI bench-gate watches as a
// lower-is-better metric. The maps are byte-identical either way
// (pinned by the planner property test), so host operations are the
// planner's entire value: plan=off is the ablation baseline that keeps
// the exhaustive cost visible next to the planned one.
func BenchmarkPipeline_PlannedSurvey(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noPlan bool
	}{{"plan=on", false}, {"plan=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tel := obs.New(obs.Config{})
			ctx := obs.With(context.Background(), tel)
			reg := tel.Registry()
			before := reg.Snapshot()
			for i := 0; i < b.N; i++ {
				m := machine.Generate(machine.SKU8259CL, i%8, machine.Config{Seed: int64(i)})
				if _, err := coremap.MapMachine(ctx, m, coremap.SkylakeXCCDie, coremap.Options{
					Probe:  probe.Options{Seed: int64(i)},
					NoPlan: mode.noPlan,
				}); err != nil {
					b.Fatal(err)
				}
			}
			ops := reg.Snapshot().Sub(before).Total("host/ops/")
			b.ReportMetric(float64(ops)/float64(b.N), "host-ops/map")
		})
	}
}

// BenchmarkPipeline_Anchored is the full pipeline with the memory-anchored
// extension (absolute maps).
func BenchmarkPipeline_Anchored(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := machine.Generate(machine.SKU8259CL, i%8, machine.Config{Seed: int64(i)})
		if _, err := coremap.MapMachine(context.Background(), m, coremap.SkylakeXCCDie, coremap.Options{
			Probe:         probe.Options{Seed: int64(i)},
			MemoryAnchors: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline_Topology runs each topology backend's quick survey —
// the seeded measure-emit-solve pass the CI smoke matrix gates on — and
// reports its host-operation cost. mesh is the paper's full MSR/PMON
// pipeline behind the topo.Backend interface; ring and noc exercise the
// alternative substrates' own emitters and solvers.
func BenchmarkPipeline_Topology(b *testing.B) {
	for _, name := range topo.Names() {
		backend, err := topo.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("topology="+name, func(b *testing.B) {
			tel := obs.New(obs.Config{})
			ctx := obs.With(context.Background(), tel)
			var hostOps int64
			for i := 0; i < b.N; i++ {
				res, err := backend.QuickSurvey(ctx, "", int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Exact || !res.Optimal {
					b.Fatalf("seed %d: exact=%v optimal=%v", i+1, res.Exact, res.Optimal)
				}
				hostOps += res.HostOps
			}
			b.ReportMetric(float64(hostOps)/float64(b.N), "host-ops/map")
		})
	}
}

// BenchmarkProbe_Step1 measures the OS↔CHA co-location discovery alone.
func BenchmarkProbe_Step1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: int64(i)})
		p, err := probe.New(m, probe.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.MapCoresToCHAs(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILP_Reconstruct solves the placement ILP from pre-measured
// observations.
func BenchmarkILP_Reconstruct(b *testing.B) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 5})
	p, err := probe.New(m, probe.Options{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	meas, err := p.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locate.Reconstruct(context.Background(), locate.Input{
			NumCHA:       meas.NumCHA,
			Rows:         m.SKU.Rows,
			Cols:         m.SKU.Cols,
			Observations: meas.Observations,
		}, locate.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveParallel compares the ILP reconstruction at 1 worker vs
// all cores on the hardest SKU models (the 8259CL with its LLC-only-tile
// fusing diversity, and the 40-tile Ice Lake 6354). The recovered map is
// identical at every worker count — only the wall clock should move.
func BenchmarkSolveParallel(b *testing.B) {
	for _, sku := range []*machine.SKU{machine.SKU8259CL, machine.SKU6354} {
		m := machine.Generate(sku, 0, machine.Config{Seed: 5})
		p, err := probe.New(m, probe.Options{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		meas, err := p.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		in := locate.Input{
			NumCHA:       meas.NumCHA,
			Rows:         sku.Rows,
			Cols:         sku.Cols,
			Observations: meas.Observations,
		}
		counts := []int{1}
		if n := runtime.GOMAXPROCS(0); n > 1 {
			counts = append(counts, n)
		}
		for _, workers := range counts {
			b.Run(fmt.Sprintf("%s/workers=%d", sku.Name, workers), func(b *testing.B) {
				var nodes int
				for i := 0; i < b.N; i++ {
					mp, err := locate.Reconstruct(context.Background(), in, locate.Options{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					nodes = mp.Nodes
				}
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}

// BenchmarkILP_Solver exercises the branch-and-bound core on a packing
// model.
func BenchmarkILP_Solver(b *testing.B) {
	build := func() (*ilp.Model, []ilp.Var) {
		m := ilp.NewModel()
		vars := make([]ilp.Var, 12)
		for i := range vars {
			vars[i] = m.NewVar("x", 0, 20)
		}
		for i := 0; i+1 < len(vars); i++ {
			m.AddGE("ord", []ilp.Term{ilp.T(1, vars[i+1]), ilp.T(-1, vars[i])}, 1)
		}
		obj := make([]ilp.Term, len(vars))
		for i := range vars {
			obj[i] = ilp.T(1, vars[i])
		}
		m.SetObjective(obj)
		return m, vars
	}
	for i := 0; i < b.N; i++ {
		m, _ := build()
		if _, err := ilp.Solve(context.Background(), m, ilp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMesh_Route measures dimension-order route construction.
func BenchmarkMesh_Route(b *testing.B) {
	g := mesh.NewGrid(8, 6)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := mesh.Coord{Row: rng.Intn(8), Col: rng.Intn(6)}
		dst := mesh.Coord{Row: rng.Intn(8), Col: rng.Intn(6)}
		g.Inject(src, dst, 1)
	}
}

// BenchmarkThermal_Step measures one Euler step of the thermal network.
func BenchmarkThermal_Step(b *testing.B) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	cfg := thermal.DefaultConfig()
	sim := thermal.New(cfg, m.SKU.Rows, m.SKU.Cols, m.PhysCoreTiles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(cfg.MaxStep)
	}
}

// BenchmarkCovert_Decode measures the offline signature-synchronized
// decoder.
func BenchmarkCovert_Decode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	trace := make([]float64, 12000)
	for i := range trace {
		trace[i] = 34 + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covert.DecodeSearch(trace, 100, 2, covert.DefaultPreamble, 64, 6)
	}
}
