// Package coremap physically locates the processor cores of mesh-based
// Intel Xeon CPUs on their die tile grid, reproducing "Know Your Neighbor:
// Physically Locating Xeon Processor Cores on the Core Tile Grid"
// (DATE 2022).
//
// The pipeline measures a machine through the hostif.Host abstraction —
// uncore-PMON MSR accesses plus pinned cache-line traffic — in three
// steps: discover the OS-core-ID ↔ CHA-ID mapping from targeted eviction
// traffic, observe which CHAs see mesh-ring ingress for every core pair,
// and reconstruct the only tile placement consistent with those partial
// observations by solving an integer linear program. The recovered map is
// stable per chip instance and can be cached under the CPU's PPIN.
//
//	res, err := coremap.MapMachine(ctx, host, coremap.SkylakeXCCDie, coremap.Options{})
//	fmt.Println(res.Render())
//
// internal/machine provides a full simulated Xeon (mesh, caches, MSRs,
// fusing diversity) so the pipeline runs without hardware; on real silicon
// only a /dev/cpu/*/msr-backed Host implementation would change.
package coremap

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"slices"

	"coremap/internal/cmerr"
	"coremap/internal/covert"
	"coremap/internal/hostif"
	"coremap/internal/locate"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/plan"
	"coremap/internal/probe"
	"coremap/internal/stats"
	"coremap/internal/topo"
)

// DieInfo is the (publicly documented) tile-grid geometry of a CPU family.
type DieInfo struct {
	Rows, Cols int
	// IMC lists the memory controllers' die positions, used by the
	// memory-anchored locating extension (die layouts are public from
	// vendor disclosures and die shots).
	IMC []mesh.Coord
}

// Die geometries of the supported families.
var (
	// SkylakeXCCDie is the 28-tile Skylake/Cascade Lake XCC die.
	SkylakeXCCDie = DieInfo{Rows: 5, Cols: 6, IMC: []mesh.Coord{{Row: 1, Col: 0}, {Row: 1, Col: 5}}}
	// IceLakeXCCDie is the 40-core-tile Ice Lake XCC die.
	IceLakeXCCDie = DieInfo{Rows: 8, Cols: 6, IMC: []mesh.Coord{
		{Row: 2, Col: 0}, {Row: 5, Col: 0}, {Row: 2, Col: 5}, {Row: 5, Col: 5},
	}}
)

// Options tunes the pipeline.
type Options struct {
	// Topology selects the interconnect backend. MapMachine drives the
	// MSR/PMON mesh pipeline and accepts only topo.KindMesh (the zero
	// value); the ring and harvested-NoC substrates are surveyed
	// through their topo.Backend implementations instead (see
	// internal/topo and the -topology flag of cmd/coremap).
	Topology topo.Kind
	// Probe tunes the measurement stage.
	Probe probe.Options
	// Locate tunes the ILP reconstruction.
	Locate locate.Options
	// PaperFaithful disables the slice-source measurement extension so
	// only the paper's core-pair experiments run.
	PaperFaithful bool
	// MemoryAnchors adds IMC→core flush+load experiments whose source
	// positions are publicly known, pinning the map in absolute die
	// coordinates (resolves the mirror and any vacant-row compaction).
	// Extension beyond the paper; requires Die.IMC.
	MemoryAnchors bool
	// NoPlan disables the adaptive measurement planner and restores the
	// exhaustive all-pairs survey. By default MapMachine plans the survey
	// from the die geometry: experiments are issued in batches chosen to
	// split the surviving placement set, and measurement stops once no
	// remaining experiment could change the reconstruction — the map is
	// byte-identical to the exhaustive survey's, for a fraction of the
	// host operations. The exhaustive mode exists as the ablation
	// baseline (and the verifier for invariants the planner assumes,
	// e.g. one CHA per core). Ignored when Options.Probe.Plan is already
	// set explicitly.
	NoPlan bool
}

// Result is a recovered physical core map.
type Result struct {
	// PPIN identifies the chip instance the map belongs to.
	PPIN uint64 `json:"ppin"`
	// Die is the grid the map lives on.
	Die DieInfo `json:"die"`
	// OSToCHA maps OS CPU IDs to CHA IDs (step 1).
	OSToCHA []int `json:"os_to_cha"`
	// Pos maps CHA IDs to tile coordinates (step 3). Positions are
	// exact up to a horizontal mirror and, when entire rows or columns
	// are fused off, a translation (paper Sec. II-D) — unless Anchored.
	Pos []mesh.Coord `json:"pos"`
	// Anchored reports that memory-anchored observations pinned the map
	// in absolute die coordinates.
	Anchored bool `json:"anchored"`
	// Optimal reports whether the ILP proved optimality.
	Optimal bool `json:"optimal"`
	// SolverNodes is the branch-and-bound effort spent.
	SolverNodes int `json:"solver_nodes"`
	// Degraded reports that the map was reconstructed from an incomplete
	// measurement (experiments or core mappings were dropped after
	// permanent host faults); Coverage is the completed fraction.
	Degraded bool    `json:"degraded,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
}

// MapMachine runs the full locating pipeline on a host. The context
// governs the whole run: cancellation or deadline expiry stops the
// measurement within one host operation and the ILP search at the next
// node boundary, returning a cmerr.Interrupted error. Host faults are
// retried (probe.Options.OpRetries) and, where retry cannot help, degraded
// around: the result is then marked Degraded with its measurement
// Coverage.
func MapMachine(ctx context.Context, h hostif.Host, die DieInfo, opts Options) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "coremap/map-machine")
	span.SetAttrStr("topology", opts.Topology.String())
	defer func() {
		if res != nil {
			span.SetAttr("solver_nodes", int64(res.SolverNodes)).
				SetAttr("coverage_permille", int64(res.Coverage*1000))
		}
		span.End(err)
	}()
	if opts.Topology != topo.KindMesh {
		return nil, cmerr.New(cmerr.Permanent, "coremap",
			"MapMachine drives the mesh pipeline; survey the %s substrate through its topo.Backend instead",
			opts.Topology)
	}
	if opts.Probe.Plan == nil && !opts.NoPlan {
		opts.Probe.Plan = &plan.Options{
			Rows:             die.Rows,
			Cols:             die.Cols,
			IMCPositions:     die.IMC,
			PaperExactBounds: opts.Locate.PaperExactBounds,
		}
	}
	p, err := probe.New(h, opts.Probe)
	if err != nil {
		return nil, cmerr.Ensure(cmerr.Permanent, "coremap", err)
	}
	ro := probe.RunOptions{SliceSources: !opts.PaperFaithful}
	if opts.MemoryAnchors {
		ro.NumIMCs = len(die.IMC)
	}
	meas, err := p.RunWith(ctx, ro)
	if err != nil && (meas == nil || !cmerr.IsDegraded(err)) {
		return nil, cmerr.Ensure(cmerr.Permanent, "coremap", err)
	}
	measErr := err // nil, or a Degraded below-coverage-floor error with a usable partial
	mp, err := locate.Reconstruct(ctx, locate.Input{
		Backend:      opts.Topology,
		NumCHA:       meas.NumCHA,
		Rows:         die.Rows,
		Cols:         die.Cols,
		Observations: meas.Observations,
		IMCPositions: die.IMC,
	}, opts.Locate)
	if err != nil {
		return nil, cmerr.Ensure(cmerr.Permanent, "coremap", err)
	}
	return &Result{
		PPIN:        meas.PPIN,
		Die:         die,
		OSToCHA:     meas.OSToCHA,
		Pos:         mp.Pos,
		Anchored:    mp.Anchored,
		Optimal:     mp.Optimal,
		SolverNodes: mp.Nodes,
		Degraded:    meas.Degraded,
		Coverage:    meas.Coverage(),
	}, measErr
}

// Render draws the recovered map as a Fig. 4-style grid with "os/cha"
// labels ("-/cha" for LLC-only tiles).
func (r *Result) Render() string {
	return stats.RenderMap(r.Die.Rows, r.Die.Cols, r.Pos, r.OSToCHA)
}

// PatternKey returns the canonical pattern identity of the map, the unit
// the paper's Table II statistics count.
func (r *Result) PatternKey() string { return stats.PatternKey(r.Pos, r.OSToCHA) }

// Planner returns a covert-channel placement planner over the map.
func (r *Result) Planner() *covert.Planner { return covert.NewPlanner(r.Pos, r.OSToCHA) }

// CPUCoord returns the mapped tile coordinate of an OS CPU.
func (r *Result) CPUCoord(cpu int) (mesh.Coord, error) {
	if cpu < 0 || cpu >= len(r.OSToCHA) {
		return mesh.Coord{}, cmerr.New(cmerr.Permanent, "coremap", "cpu %d out of range", cpu).OnCPU(cpu)
	}
	cha := r.OSToCHA[cpu]
	if cha < 0 || cha >= len(r.Pos) {
		return mesh.Coord{}, cmerr.New(cmerr.Permanent, "coremap", "cpu %d has no mapped CHA", cpu).OnCPU(cpu)
	}
	return r.Pos[cha], nil
}

// Registry caches recovered maps by PPIN. The mapping requires root (MSR
// access) once per chip; afterwards any user-level process that knows the
// PPIN can reuse the map — which is why the paper treats the map as a
// lasting capability.
type Registry struct {
	maps map[uint64]*Result
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{maps: make(map[uint64]*Result)} }

// Store records a result, replacing any previous map for the same PPIN.
func (g *Registry) Store(r *Result) { g.maps[r.PPIN] = r }

// Lookup returns the cached map for a chip.
func (g *Registry) Lookup(ppin uint64) (*Result, bool) {
	r, ok := g.maps[ppin]
	return r, ok
}

// Len returns the number of cached maps.
func (g *Registry) Len() int { return len(g.maps) }

// Save serializes the registry as JSON, ordered by PPIN so the encoding
// is canonical (the content-addressed caches fingerprint it).
func (g *Registry) Save(w io.Writer) error {
	ppins := make([]uint64, 0, len(g.maps))
	for ppin := range g.maps {
		ppins = append(ppins, ppin)
	}
	slices.Sort(ppins)
	all := make([]*Result, 0, len(ppins))
	for _, ppin := range ppins {
		all = append(all, g.maps[ppin])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}

// LoadRegistry reads a registry saved with Save.
func LoadRegistry(rd io.Reader) (*Registry, error) {
	var all []*Result
	if err := json.NewDecoder(rd).Decode(&all); err != nil {
		return nil, fmt.Errorf("coremap: loading registry: %w", err)
	}
	g := NewRegistry()
	for _, r := range all {
		g.Store(r)
	}
	return g, nil
}
