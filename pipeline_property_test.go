package coremap_test

// End-to-end property test: the full pipeline must hold its guarantees on
// *randomized* die configurations, not just the four catalog SKUs —
// arbitrary grid sizes, IMC placements, core counts and fusing patterns.

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"coremap"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// randomSKU builds a random but well-formed die description.
func randomSKU(r *rand.Rand) *machine.SKU {
	rows := 3 + r.Intn(3)
	cols := 3 + r.Intn(3)
	gen := machine.Skylake
	if r.Intn(2) == 1 {
		gen = machine.IceLake
	}
	sku := &machine.SKU{
		Name:           "random",
		Generation:     gen,
		Rows:           rows,
		Cols:           cols,
		PatternWeights: []float64{1},
	}
	// Up to two IMC tiles at distinct positions.
	used := map[mesh.Coord]bool{}
	for i := 0; i < r.Intn(3); i++ {
		c := mesh.Coord{Row: r.Intn(rows), Col: r.Intn(cols)}
		if !used[c] {
			used[c] = true
			sku.IMC = append(sku.IMC, c)
		}
	}
	coreTiles := rows*cols - len(sku.IMC)
	// Keep at least 4 cores and disable at most a third of the tiles so
	// the observation set stays informative.
	maxDisabled := coreTiles / 3
	disabled := r.Intn(maxDisabled + 1)
	llcOnly := 0
	if coreTiles-disabled > 5 && r.Intn(2) == 1 {
		llcOnly = 1 + r.Intn(2)
	}
	sku.Cores = coreTiles - disabled - llcOnly
	sku.LLCOnly = llcOnly
	if sku.Cores < 4 {
		sku.Cores = 4
		sku.LLCOnly = 0
	}
	return sku
}

func TestPipelinePropertyRandomDies(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sku := randomSKU(r)
		pattern := sku.Pattern(r.Intn(4))
		m := machine.New(sku, pattern, machine.Config{Seed: seed})

		die := coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}
		res, err := coremap.MapMachine(context.Background(), m, die, coremap.Options{
			Probe:         probe.Options{Seed: seed},
			MemoryAnchors: len(sku.IMC) > 0,
		})
		if err != nil {
			t.Logf("seed %d (%dx%d, %d cores, %d llc-only, %d imc): %v",
				seed, sku.Rows, sku.Cols, sku.Cores, sku.LLCOnly, len(sku.IMC), err)
			return false
		}

		// Step 1 must be exact on every configuration.
		truthMapping := m.TrueOSToCHA()
		for cpu, cha := range res.OSToCHA {
			if cha != truthMapping[cpu] {
				t.Logf("seed %d: step1 OS %d → CHA %d, want %d", seed, cpu, cha, truthMapping[cpu])
				return false
			}
		}

		// The map must stay close to the true relative ordering.
		truth := make([]mesh.Coord, m.NumCHAs())
		for cha := range truth {
			truth[cha] = m.TrueCHACoord(cha)
		}
		if rs := locate.RelativeScore(res.Pos, truth); rs < 0.8 {
			t.Logf("seed %d (%dx%d, %d cores): relative score %.3f", seed, sku.Rows, sku.Cols, sku.Cores, rs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Error(err)
	}
}
