module coremap

go 1.22
