// Cloudsurvey reproduces the paper's survey methodology at small scale:
// rent many instances of the same CPU model, map each one, and count how
// many distinct physical core layouts the model exhibits (Table I/II).
package main

import (
	"context"
	"fmt"
	"log"

	"coremap"
	"coremap/internal/machine"
	"coremap/internal/probe"
	"coremap/internal/stats"
)

func main() {
	const instances = 12
	sku := machine.SKU8259CL
	pop := machine.NewPopulation(sku, 7, machine.Config{})

	mappings := stats.NewCounter()
	patterns := stats.NewCounter()
	registry := coremap.NewRegistry()

	for i := 0; i < instances; i++ {
		host, _ := pop.Next()
		res, err := coremap.MapMachine(context.Background(), host, coremap.SkylakeXCCDie, coremap.Options{
			Probe: probe.Options{Seed: int64(i)},
		})
		if err != nil {
			log.Fatalf("instance %d: %v", i, err)
		}
		mappings.Add(stats.MappingKey(res.OSToCHA))
		patterns.Add(res.PatternKey())
		registry.Store(res)
	}

	fmt.Printf("surveyed %d %s instances:\n", instances, sku.Name)
	fmt.Printf("  distinct OS↔CHA mappings: %d (Table I)\n", mappings.Unique())
	fmt.Printf("  distinct physical layouts: %d (Table II)\n", patterns.Unique())
	fmt.Printf("  maps cached by PPIN: %d\n\n", registry.Len())
	for i, c := range mappings.Top(3) {
		fmt.Printf("  mapping #%d seen on %d instances\n", i+1, c.N)
		_ = c
	}
}
