// Defense demonstrates the countermeasures the paper suggests against the
// thermal covert channel: reducing the temperature sensor's resolution or
// its update frequency shrinks the channel until it disappears.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"coremap"
	"coremap/internal/covert"
	"coremap/internal/machine"
)

func main() {
	host := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 5})
	res, err := coremap.MapMachine(context.Background(), host, coremap.SkylakeXCCDie, coremap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan := res.Planner()
	pair := plan.PairsAtOffset(1, 0)[0]

	payload := make([]bool, 200)
	rng := rand.New(rand.NewSource(1))
	for i := range payload {
		payload[i] = rng.Intn(2) == 1
	}

	fmt.Println("vertical 1-hop channel at 2 bps under sensor defenses:")
	for _, d := range []struct {
		name         string
		resolutionC  int
		updatePeriod float64
	}{
		{"undefended (1°C, live)", 1, 0},
		{"4°C resolution", 4, 0},
		{"1 s update period", 1, 1.0},
	} {
		host.SetThermalDefense(d.resolutionC, d.updatePeriod)
		platform := covert.NewSimPlatform(host, covert.CloudThermalConfig(5))
		r, err := covert.Run(context.Background(), platform, []covert.ChannelSpec{{
			Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload,
		}}, covert.Config{BitRate: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s BER %.3f (synced=%v)\n", d.name, r[0].BER, r[0].Synced)
	}
}
