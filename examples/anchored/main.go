// Anchored demonstrates the memory-anchored locating extension: flush+load
// streams from the integrated memory controllers — whose die positions are
// public — pin the recovered map in absolute die coordinates, removing the
// mirror and translation ambiguities of the core-pair-only method.
package main

import (
	"context"
	"fmt"
	"log"

	"coremap"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
)

func main() {
	// The heavily fused Ice Lake part: 18 cores + 8 LLC-only tiles on a
	// 40-core-tile die. Core-pair traffic alone leaves whole regions
	// under-determined here.
	host := machine.Generate(machine.SKU6354, 0, machine.Config{Seed: 11})

	plain, err := coremap.MapMachine(context.Background(), host, coremap.IceLakeXCCDie, coremap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	anchored, err := coremap.MapMachine(context.Background(), host, coremap.IceLakeXCCDie, coremap.Options{MemoryAnchors: true})
	if err != nil {
		log.Fatal(err)
	}

	truth := make([]mesh.Coord, host.NumCHAs())
	for cha := range truth {
		truth[cha] = host.TrueCHACoord(cha)
	}
	_, plainAbs := locate.ScoreAbsolute(plain.Pos, truth)
	_, anchAbs := locate.ScoreAbsolute(anchored.Pos, truth)

	fmt.Printf("Xeon 6354, core-pair observations only:\n")
	fmt.Printf("  absolute accuracy %d/%d tiles, %d ILP nodes (map defined only up to mirror/translation)\n",
		plainAbs, len(truth), plain.SolverNodes)
	fmt.Printf("with memory anchors (IMC→core flush+load streams):\n")
	fmt.Printf("  absolute accuracy %d/%d tiles, %d ILP nodes\n\n", anchAbs, len(truth), anchored.SolverNodes)
	fmt.Printf("anchored map (absolute die coordinates):\n%s", anchored.Render())
}
