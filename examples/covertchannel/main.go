// Covertchannel demonstrates the paper's end-to-end attack: recover the
// physical core map, place a sender next to a receiver on the die, and
// leak data through heat.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"coremap"
	"coremap/internal/covert"
	"coremap/internal/machine"
)

func main() {
	host := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 3})

	// Root-once: recover and cache the physical map.
	res, err := coremap.MapMachine(context.Background(), host, coremap.SkylakeXCCDie, coremap.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// User-level afterwards: place a vertical 1-hop channel using the
	// map — the placement knowledge lstopo cannot provide.
	plan := res.Planner()
	pair := plan.PairsAtOffset(1, 0)[0]
	fmt.Printf("sender cpu %d at %v → receiver cpu %d at %v\n",
		pair[0], plan.CoordOf(pair[0]), pair[1], plan.CoordOf(pair[1]))

	secret := make([]bool, 128)
	rng := rand.New(rand.NewSource(1))
	for i := range secret {
		secret[i] = rng.Intn(2) == 1
	}

	platform := covert.NewSimPlatform(host, covert.CloudThermalConfig(3))
	results, err := covert.Run(context.Background(), platform, []covert.ChannelSpec{{
		Senders:  []int{pair[0]},
		Receiver: pair[1],
		Payload:  secret,
	}}, covert.Config{BitRate: 2})
	if err != nil {
		log.Fatal(err)
	}

	r := results[0]
	fmt.Printf("transferred %d bits at 2 bps: synced=%v, %d bit errors (BER %.4f)\n",
		len(secret), r.Synced, r.BitErrors, r.BER)
}
