// Icelake maps a third-generation (Ice Lake) Xeon 6354 instance, showing
// that the locating method transfers to the newer die with its different
// CHA numbering — the paper's Sec. III-B / Fig. 5 result.
package main

import (
	"context"
	"fmt"
	"log"

	"coremap"
	"coremap/internal/machine"
)

func main() {
	host := machine.Generate(machine.SKU6354, 0, machine.Config{Seed: 11})

	res, err := coremap.MapMachine(context.Background(), host, coremap.IceLakeXCCDie, coremap.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Xeon 6354 (Ice Lake), 18 cores on an 8×6 tile grid\n\n")
	fmt.Printf("OS core ID → CHA ID: %v\n", res.OSToCHA)
	fmt.Println("(note the ascending CHA order — a different firmware rule than Skylake's mod-4 groups)")
	fmt.Printf("\nrecovered map (OS/CHA; \"-/n\" are LLC-only tiles):\n%s", res.Render())
	fmt.Printf("\nILP search: optimal=%v, %d nodes\n", res.Optimal, res.SolverNodes)
}
