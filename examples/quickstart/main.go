// Quickstart: map one simulated Xeon Platinum 8259CL instance and print
// its physical core layout.
//
// The coremap pipeline only needs a hostif.Host — here the simulated
// machine; on real hardware a /dev/cpu/*/msr-backed implementation.
package main

import (
	"context"
	"fmt"
	"log"

	"coremap"
	"coremap/internal/machine"
)

func main() {
	// A cloud instance as the attacker would rent it: unknown fusing
	// pattern, unknown ID mappings.
	host := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 42})

	res, err := coremap.MapMachine(context.Background(), host, coremap.SkylakeXCCDie, coremap.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip PPIN: %#016x\n\n", res.PPIN)
	fmt.Printf("step 1 — OS core ID → CHA ID: %v\n\n", res.OSToCHA)
	fmt.Printf("step 2+3 — recovered core tile grid (OS/CHA):\n%s\n", res.Render())

	// The map is permanent for this chip: cache it under the PPIN so
	// user-level code can reuse it without re-running the probe.
	reg := coremap.NewRegistry()
	reg.Store(res)
	if cached, ok := reg.Lookup(res.PPIN); ok {
		where, _ := cached.CPUCoord(0)
		fmt.Printf("cpu 0 sits at tile %v\n", where)
	}
}
