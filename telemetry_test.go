package coremap

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"coremap/internal/faulty"
	"coremap/internal/hostif"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/msr"
	"coremap/internal/obs"
	"coremap/internal/probe"
)

// recordingHost logs every host operation, in order, before forwarding it
// — the telemetry-transparency tests compare these logs across runs with
// and without telemetry attached.
type recordingHost struct {
	h   hostif.Host
	ops []string
}

func (r *recordingHost) log(format string, args ...any) {
	r.ops = append(r.ops, fmt.Sprintf(format, args...))
}

func (r *recordingHost) NumCPUs() int { return r.h.NumCPUs() }

func (r *recordingHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	r.log("rdmsr cpu=%d addr=%#x", cpu, uint64(a))
	return r.h.ReadMSR(cpu, a)
}

func (r *recordingHost) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	r.log("wrmsr cpu=%d addr=%#x val=%#x", cpu, uint64(a), v)
	return r.h.WriteMSR(cpu, a, v)
}

func (r *recordingHost) Load(cpu int, addr uint64) error {
	r.log("load cpu=%d addr=%#x", cpu, addr)
	return r.h.Load(cpu, addr)
}

func (r *recordingHost) TimedLoad(cpu int, addr uint64) (uint64, error) {
	r.log("timedload cpu=%d addr=%#x", cpu, addr)
	return r.h.TimedLoad(cpu, addr)
}

func (r *recordingHost) Store(cpu int, addr uint64) error {
	r.log("store cpu=%d addr=%#x", cpu, addr)
	return r.h.Store(cpu, addr)
}

func (r *recordingHost) Flush(cpu int, addr uint64) error {
	r.log("flush cpu=%d addr=%#x", cpu, addr)
	return r.h.Flush(cpu, addr)
}

// fakeClockTelemetry builds a telemetry whose clock ticks a fixed step per
// read, so identical runs stamp identical span timings.
func fakeClockTelemetry(sink *bytes.Buffer) *obs.Telemetry {
	return obs.New(obs.Config{
		Clock:     obs.NewFakeClock(time.Unix(0, 0).UTC(), time.Microsecond),
		TraceSink: sink,
	})
}

// mappedRun maps one fresh, identically-seeded instance and returns the
// result plus the recorded host-operation trace. Workers is pinned to 1:
// the recovered map is identical at any worker count, but node totals —
// and with them the trace — are only deterministic single-threaded.
func mappedRun(t *testing.T, tel *obs.Telemetry) (*Result, []string) {
	t.Helper()
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 7})
	rec := &recordingHost{h: m}
	ctx := context.Background()
	if tel != nil {
		ctx = obs.With(ctx, tel)
	}
	sku := machine.SKU8175M
	res, err := MapMachine(ctx, rec, DieInfo{Rows: sku.Rows, Cols: sku.Cols}, Options{
		Probe:  probe.Options{Seed: 1},
		Locate: locate.Options{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.ops
}

// TestTelemetryTransparent pins the zero-interference contract: attaching
// telemetry must change neither the recovered map nor a single host
// operation of the measurement.
func TestTelemetryTransparent(t *testing.T) {
	plainRes, plainOps := mappedRun(t, nil)
	var sink bytes.Buffer
	tel := fakeClockTelemetry(&sink)
	instrRes, instrOps := mappedRun(t, tel)

	if !reflect.DeepEqual(plainRes, instrRes) {
		t.Errorf("telemetry changed the pipeline result:\nplain: %+v\ninstrumented: %+v", plainRes, instrRes)
	}
	if len(plainOps) != len(instrOps) {
		t.Fatalf("telemetry changed the host trace length: %d vs %d ops", len(plainOps), len(instrOps))
	}
	for i := range plainOps {
		if plainOps[i] != instrOps[i] {
			t.Fatalf("host traces diverge at op %d: %q vs %q", i, plainOps[i], instrOps[i])
		}
	}
	if sink.Len() == 0 {
		t.Error("instrumented run emitted no trace")
	}
	// The labeled world must be populated too: the per-op experiment
	// counters partition the planned total exactly, and misuse-free
	// instrumentation leaves the vec-error counter at zero.
	snap := tel.Registry().Snapshot()
	labeled := 0
	for name := range snap.Counters {
		if strings.HasPrefix(name, "probe/experiments_by_op{") {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("instrumented run produced no labeled per-op series")
	}
	if got, want := snap.Total("probe/experiments_by_op{"), snap.Counters["probe/experiments/planned"]; got != want {
		t.Errorf("labeled per-op counters sum to %d, want planned total %d", got, want)
	}
	if n := snap.Counters["obs/vec_errors"]; n != 0 {
		t.Errorf("pipeline instrumentation misused labeled metrics %d times", n)
	}
}

// TestTraceDeterministic pins satellite invariant: two identically-seeded
// runs under a fake clock emit byte-identical JSONL traces.
func TestTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	telA, telB := fakeClockTelemetry(&a), fakeClockTelemetry(&b)
	mappedRun(t, telA)
	mappedRun(t, telB)
	if a.Len() == 0 {
		t.Fatal("run emitted no trace")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identically-seeded runs emitted different traces:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	if err := obs.ValidateTrace(bytes.NewReader(a.Bytes())); err != nil {
		t.Errorf("emitted trace fails schema validation: %v", err)
	}
	// Determinism extends to the labeled world: the full Prometheus
	// exposition — every series of every vec, quantile fields included —
	// must be byte-identical across identically-seeded runs.
	var pa, pb bytes.Buffer
	if err := obs.WriteProm(&pa, telA.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteProm(&pb, telB.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if pa.Len() == 0 {
		t.Fatal("run emitted an empty exposition")
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Errorf("identically-seeded runs emitted different expositions:\n--- a ---\n%s--- b ---\n%s", pa.String(), pb.String())
	}
	if err := obs.ValidateProm(bytes.NewReader(pa.Bytes())); err != nil {
		t.Errorf("emitted exposition fails validation: %v", err)
	}
}

// reconcile checks the probe counter partition against the probe result.
func reconcile(t *testing.T, snap obs.Snapshot, res *probe.Result) {
	t.Helper()
	planned := snap.Counters["probe/experiments/planned"]
	completed := snap.Counters["probe/experiments/completed"]
	failed := snap.Counters["probe/experiments/failed"]
	skipped := snap.Counters["probe/experiments/skipped"]
	if planned != completed+failed+skipped {
		t.Errorf("counters do not partition: planned %d != completed %d + failed %d + skipped %d",
			planned, completed, failed, skipped)
	}
	if planned != int64(res.Planned) {
		t.Errorf("planned counter %d != Result.Planned %d", planned, res.Planned)
	}
	if completed != int64(res.Completed) {
		t.Errorf("completed counter %d != Result.Completed %d", completed, res.Completed)
	}
	if byOp := snap.Total("probe/experiments_by_op{"); byOp != planned {
		t.Errorf("labeled per-op counters sum to %d, want planned %d", byOp, planned)
	}
}

// TestReportReconciles runs the probe under telemetry and checks that the
// RunReport's experiment accounting matches probe.Result exactly — on a
// clean host and under injected faults.
func TestReportReconciles(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		tel := fakeClockTelemetry(&bytes.Buffer{})
		ctx := obs.With(context.Background(), tel)
		m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 7})
		p, err := probe.New(m, probe.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunWith(ctx, probe.RunOptions{SliceSources: true})
		if err != nil {
			t.Fatal(err)
		}
		snap := tel.Registry().Snapshot()
		reconcile(t, snap, res)

		var probeRow *obs.StageRow
		for _, row := range obs.BuildReport(snap, tel.Spans()) {
			if row.Stage == "probe" {
				row := row
				probeRow = &row
			}
		}
		if probeRow == nil {
			t.Fatal("report has no probe row")
		}
		if probeRow.Ops != int64(res.Planned) {
			t.Errorf("probe row Ops = %d, want Result.Planned %d", probeRow.Ops, res.Planned)
		}
		if want := res.Coverage() * 100; probeRow.Coverage != want {
			t.Errorf("probe row Coverage = %.1f, want %.1f", probeRow.Coverage, want)
		}
	})

	t.Run("faulty", func(t *testing.T) {
		tel := fakeClockTelemetry(&bytes.Buffer{})
		ctx := obs.With(context.Background(), tel)
		m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 7})
		fh := faulty.New(m, faulty.Options{Seed: 3, StuckCPUs: []int{5}})
		fh.Register(tel.Registry())
		p, err := probe.New(fh, probe.Options{Seed: 1, OpRetries: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunWith(ctx, probe.RunOptions{SliceSources: true})
		if err != nil {
			t.Fatal(err)
		}
		snap := tel.Registry().Snapshot()
		reconcile(t, snap, res)
		if snap.Counters["probe/experiments/failed"]+snap.Counters["probe/experiments/skipped"] == 0 {
			t.Error("stuck CPU produced neither failed nor skipped experiments")
		}
		if snap.Gauges["faulty/injected"] == 0 {
			t.Error("fault injector registered no injected faults")
		}
	})
}

// TestDegradedRunFlightDump is the post-mortem acceptance test: a run
// degraded by a stuck CPU must arm the flight recorder, and the resulting
// dump must attribute the dropped experiments to the exact
// (stage, op, CPU, CHA) — without re-parsing any message strings.
func TestDegradedRunFlightDump(t *testing.T) {
	tel := fakeClockTelemetry(&bytes.Buffer{})
	ctx := obs.With(context.Background(), tel)
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: 92})
	const stuck = 5
	fh := faulty.New(m, faulty.Options{Seed: 92, StuckCPUs: []int{stuck}})
	res, err := MapMachine(ctx, fh, DieInfo{Rows: sku.Rows, Cols: sku.Cols},
		Options{Probe: probe.Options{Seed: 92, RetryBackoff: time.Microsecond}})
	if res == nil || !res.Degraded {
		t.Fatalf("stuck CPU did not degrade the run (res=%v, err=%v)", res, err)
	}
	if !tel.FlightTriggered() {
		t.Fatal("degraded run did not arm the flight recorder")
	}

	var dump bytes.Buffer
	if err := tel.WriteFlight(&dump, err); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateFlight(bytes.NewReader(dump.Bytes())); err != nil {
		t.Fatalf("flight dump fails its own schema: %v", err)
	}

	var first struct {
		Flight obs.FlightHeader `json:"flight"`
	}
	header, _, _ := strings.Cut(dump.String(), "\n")
	if err := json.Unmarshal([]byte(header), &first); err != nil {
		t.Fatalf("flight header: %v", err)
	}
	if len(first.Flight.Triggers) == 0 {
		t.Fatal("flight header records no triggers")
	}
	attributed := false
	for _, trig := range first.Flight.Triggers {
		if trig.Name != "probe/core-unmapped" && trig.Name != "probe/experiment-failed" {
			continue
		}
		if trig.Info == nil {
			t.Errorf("trigger %s lost its cmerr provenance", trig.Name)
			continue
		}
		info := trig.Info
		if info.Stage != "probe" {
			t.Errorf("trigger stage = %q, want probe", info.Stage)
		}
		if info.Op == "" {
			t.Error("trigger lost its op")
		}
		if info.Class != "permanent" {
			t.Errorf("trigger class = %q, want permanent", info.Class)
		}
		if info.CPU == stuck && info.CHA >= 0 {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("no trigger attributes the failure to CPU %d with a CHA coordinate; triggers = %+v",
			stuck, first.Flight.Triggers)
	}
	// The dump retains the failing stage's recent spans alongside the
	// metrics snapshot line.
	if !strings.Contains(dump.String(), `{"metrics":`) {
		t.Error("flight dump has no metrics snapshot line")
	}
	if !strings.Contains(dump.String(), `"probe/core-unmapped"`) {
		t.Error("flight dump does not retain the failure events themselves")
	}
}

// TestEmittedArtifactsValidate schema-checks trace and metrics files
// produced by an external command run; CI's telemetry smoke step sets the
// environment variables after running cmd/experiments with -trace and
// -metrics-out. Skipped when the variables are unset.
func TestEmittedArtifactsValidate(t *testing.T) {
	tracePath := os.Getenv("COREMAP_TRACE_FILE")
	metricsPath := os.Getenv("COREMAP_METRICS_FILE")
	promPath := os.Getenv("COREMAP_PROM_FILE")
	if tracePath == "" && metricsPath == "" && promPath == "" {
		t.Skip("COREMAP_TRACE_FILE / COREMAP_METRICS_FILE / COREMAP_PROM_FILE not set")
	}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := obs.ValidateTrace(f); err != nil {
			t.Errorf("%s fails trace schema validation: %v", tracePath, err)
		}
	}
	if metricsPath != "" {
		f, err := os.Open(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := obs.ValidateMetrics(f); err != nil {
			t.Errorf("%s fails metrics schema validation: %v", metricsPath, err)
		}
	}
	if promPath != "" {
		f, err := os.Open(promPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := obs.ValidateProm(f); err != nil {
			t.Errorf("%s fails exposition validation: %v", promPath, err)
		}
	}
}
