package coremap_test

// Refactor-transparency pin: the mesh backend must keep producing maps
// byte-identical to the pre-refactor pipeline. The goldens in
// testdata/mesh_golden.json were captured from the tree *before* the
// topology-backend extraction (PR 7) across the determinism corpus —
// catalog SKUs × survey seeds × ILP worker counts × planner on/off — and
// every future change to the mesh path must reproduce them exactly.
// Regenerate (only when the pipeline semantics intentionally change,
// with a fingerprintVersion bump) with:
//
//	go test -run TestMeshGoldenMaps -update-golden .

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"coremap"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/mesh_golden.json from the current pipeline")

const goldenPath = "testdata/mesh_golden.json"

// goldenMap is the serialized per-combo pipeline output. Every field the
// map's identity depends on participates; solver effort (node counts)
// deliberately does not, it may vary with worker count.
type goldenMap struct {
	OSToCHA  []int        `json:"os_to_cha"`
	Pos      []mesh.Coord `json:"pos"`
	Anchored bool         `json:"anchored"`
	Optimal  bool         `json:"optimal"`
}

// goldenCorpus enumerates the determinism corpus in a fixed order:
// SKUs × seeds × worker counts × plan on/off.
func goldenCorpus() (keys []string, run map[string]func(t testing.TB) goldenMap) {
	skus := []*machine.SKU{machine.SKU8124M, machine.SKU8259CL, machine.SKU6354}
	seeds := []int64{3, 11}
	workers := []int{1, 4}
	plans := []bool{true, false}

	run = make(map[string]func(t testing.TB) goldenMap)
	for _, sku := range skus {
		for _, seed := range seeds {
			for _, w := range workers {
				for _, planned := range plans {
					sku, seed, w, planned := sku, seed, w, planned
					key := fmt.Sprintf("%s/seed=%d/workers=%d/plan=%v", sku.Name, seed, w, planned)
					keys = append(keys, key)
					run[key] = func(t testing.TB) goldenMap {
						m := machine.New(sku, sku.Pattern(int(seed)%3), machine.Config{Seed: seed})
						die := coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}
						res, err := coremap.MapMachine(context.Background(), m, die, coremap.Options{
							Probe:         probe.Options{Seed: seed},
							Locate:        locate.Options{Workers: w},
							MemoryAnchors: true,
							NoPlan:        !planned,
						})
						if err != nil {
							t.Fatalf("%s: %v", key, err)
						}
						return goldenMap{
							OSToCHA:  res.OSToCHA,
							Pos:      res.Pos,
							Anchored: res.Anchored,
							Optimal:  res.Optimal,
						}
					}
				}
			}
		}
	}
	return keys, run
}

func TestMeshGoldenMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism corpus is not -short material")
	}
	keys, run := goldenCorpus()

	if *updateGolden {
		out := make(map[string]goldenMap, len(keys))
		for _, key := range keys {
			out[key] = run[key](t)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden maps to %s", len(out), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with -update-golden): %v", err)
	}
	want := make(map[string]goldenMap)
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	var wantKeys []string
	for k := range want {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	gotKeys := append([]string(nil), keys...)
	sort.Strings(gotKeys)
	if !reflect.DeepEqual(wantKeys, gotKeys) {
		t.Fatalf("corpus drifted from goldens:\n got %v\nwant %v", gotKeys, wantKeys)
	}

	for _, key := range keys {
		key := key
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			got := run[key](t)
			if !reflect.DeepEqual(got, want[key]) {
				t.Errorf("map diverged from pre-refactor golden\n got %+v\nwant %+v", got, want[key])
			}
		})
	}
}
