package coremap_test

// Tests of the memory-anchored locating extension: flush+load streams from
// the (publicly positioned) integrated memory controllers pin the
// reconstruction in absolute die coordinates, removing the mirror and
// translation ambiguities of the core-pair-only method.

import (
	"context"
	"testing"

	"coremap"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

func anchoredMap(t *testing.T, sku *machine.SKU, idx int, seed int64, anchors bool) (*machine.Machine, *coremap.Result) {
	t.Helper()
	m := machine.Generate(sku, idx, machine.Config{Seed: seed})
	die := coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}
	res, err := coremap.MapMachine(context.Background(), m, die, coremap.Options{
		Probe:         probe.Options{Seed: 1},
		MemoryAnchors: anchors,
	})
	if err != nil {
		t.Fatalf("%s p%d: %v", sku.Name, idx, err)
	}
	return m, res
}

func truthOf(m *machine.Machine) []mesh.Coord {
	truth := make([]mesh.Coord, m.NumCHAs())
	for cha := range truth {
		truth[cha] = m.TrueCHACoord(cha)
	}
	return truth
}

// TestAnchoredMapsAreAbsolute: anchored reconstruction of lightly fused
// parts must match ground truth with no symmetry allowance at all.
func TestAnchoredMapsAreAbsolute(t *testing.T) {
	for _, tc := range []struct {
		sku *machine.SKU
		idx int
		// minCorrect relaxes the requirement for instances with an
		// LLC-only tile that lacks observable anchoring (the Sec. V-D
		// exception class — a core-less tile cannot flush+load).
		minCorrect int
	}{
		{machine.SKU8259CL, 0, 26},
		{machine.SKU8259CL, 1, 25},
		{machine.SKU8175M, 0, 24},
		{machine.SKU8124M, 1, 18},
	} {
		m, res := anchoredMap(t, tc.sku, tc.idx, int64(tc.idx)+7, true)
		if !res.Anchored {
			t.Fatalf("%s p%d: result not marked anchored", tc.sku.Name, tc.idx)
		}
		if _, n := locate.ScoreAbsolute(res.Pos, truthOf(m)); n < tc.minCorrect {
			t.Errorf("%s p%d: anchored map %d/%d absolute, want ≥%d",
				tc.sku.Name, tc.idx, n, m.NumCHAs(), tc.minCorrect)
		}
	}
}

// TestAnchorsImproveHeavilyFusedParts: on the Ice Lake part (22 of 40
// tiles inactive), anchoring must strictly improve absolute accuracy and
// shrink the ILP search.
func TestAnchorsImproveHeavilyFusedParts(t *testing.T) {
	m1, plain := anchoredMap(t, machine.SKU6354, 0, 7, false)
	m2, anchored := anchoredMap(t, machine.SKU6354, 0, 7, true)
	_, plainN := locate.ScoreAbsolute(plain.Pos, truthOf(m1))
	_, anchoredN := locate.ScoreAbsolute(anchored.Pos, truthOf(m2))
	if anchoredN < plainN {
		t.Errorf("anchoring reduced absolute accuracy: %d vs %d of %d",
			anchoredN, plainN, m2.NumCHAs())
	}
	if anchoredN < m2.NumCHAs()-3 {
		t.Errorf("anchored absolute accuracy %d/%d too low", anchoredN, m2.NumCHAs())
	}
	if anchored.SolverNodes >= plain.SolverNodes {
		t.Errorf("anchoring did not shrink the search: %d vs %d nodes",
			anchored.SolverNodes, plain.SolverNodes)
	}
}

// TestAnchoredRejectsMissingIMCInfo: anchored observations without IMC
// positions must fail loudly, not silently mis-place tiles.
func TestAnchoredRejectsMissingIMCInfo(t *testing.T) {
	obs := []probe.Observation{{SrcCHA: -1, DstCHA: 0, Anchored: true, SrcIMC: 1, Down: []int{0}}}
	_, err := locate.Reconstruct(context.Background(), locate.Input{NumCHA: 2, Rows: 3, Cols: 3, Observations: obs}, locate.Options{})
	if err == nil {
		t.Fatal("anchored observation without IMC positions accepted")
	}
}

// TestAnchoredObservationMatchesRoute: the measured anchored observation
// must equal the ground-truth IMC→core route through enabled CHAs.
func TestAnchoredObservationMatchesRoute(t *testing.T) {
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: 7})
	p, err := probe.New(m, probe.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cpu := range []int{0, 9, 23} {
		for imc := 0; imc < len(sku.IMC); imc++ {
			obs, err := p.MeasureMemoryTraffic(context.Background(), cpu, mapping[cpu], imc, len(sku.IMC))
			if err != nil {
				t.Fatal(err)
			}
			var up, down, horz []int
			for _, h := range m.Grid.Route(sku.IMC[imc], m.TrueCoreCoord(cpu)) {
				tl := m.Grid.Tile(h.To)
				if !tl.Kind.HasCHA() {
					continue
				}
				switch {
				case h.Ch == mesh.Up:
					up = append(up, tl.CHA)
				case h.Ch == mesh.Down:
					down = append(down, tl.CHA)
				default:
					horz = append(horz, tl.CHA)
				}
			}
			sortInts(up)
			sortInts(down)
			sortInts(horz)
			if !eqInts(obs.Up, up) || !eqInts(obs.Down, down) || !eqInts(obs.Horz, horz) {
				t.Errorf("cpu %d imc %d: observation %v/%v/%v, want %v/%v/%v",
					cpu, imc, obs.Up, obs.Down, obs.Horz, up, down, horz)
			}
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
