package coremap

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

func mapInstance(t *testing.T, sku *machine.SKU, pattern int, seed int64, opts Options) (*machine.Machine, *Result) {
	t.Helper()
	m := machine.Generate(sku, pattern, machine.Config{Seed: seed})
	opts.Probe.Seed = seed
	res, err := MapMachine(context.Background(), m, DieInfo{Rows: sku.Rows, Cols: sku.Cols}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestMapMachineEndToEnd(t *testing.T) {
	m, res := mapInstance(t, machine.SKU8259CL, 0, 77, Options{})
	if res.PPIN != m.PPIN {
		t.Errorf("PPIN = %#x, want %#x", res.PPIN, m.PPIN)
	}
	if len(res.OSToCHA) != m.NumCPUs() {
		t.Errorf("OSToCHA has %d entries, want %d", len(res.OSToCHA), m.NumCPUs())
	}
	if len(res.Pos) != m.NumCHAs() {
		t.Errorf("Pos has %d entries, want %d", len(res.Pos), m.NumCHAs())
	}
	truth := make([]mesh.Coord, m.NumCHAs())
	for cha := range truth {
		truth[cha] = m.TrueCHACoord(cha)
	}
	if exact, n := locate.Score(res.Pos, truth); !exact {
		t.Errorf("map not exact: %d/%d", n, len(truth))
	}
}

func TestMapMachinePaperFaithful(t *testing.T) {
	_, res := mapInstance(t, machine.SKU8259CL, 0, 78, Options{PaperFaithful: true})
	// Core-pair-only measurements must still place every CHA on the grid.
	if len(res.Pos) != 26 {
		t.Fatalf("placed %d CHAs, want 26", len(res.Pos))
	}
}

func TestResultRenderAndCoord(t *testing.T) {
	_, res := mapInstance(t, machine.SKU8124M, 0, 79, Options{})
	grid := res.Render()
	if !strings.Contains(grid, "/") {
		t.Errorf("render has no OS/CHA labels:\n%s", grid)
	}
	if strings.Count(grid, "\n") != res.Die.Rows {
		t.Errorf("render has %d lines, want %d", strings.Count(grid, "\n"), res.Die.Rows)
	}
	if _, err := res.CPUCoord(0); err != nil {
		t.Errorf("CPUCoord(0): %v", err)
	}
	if _, err := res.CPUCoord(-1); err == nil {
		t.Error("CPUCoord(-1) accepted")
	}
	if _, err := res.CPUCoord(10_000); err == nil {
		t.Error("CPUCoord(10000) accepted")
	}
}

func TestResultPlannerFindsNeighbors(t *testing.T) {
	_, res := mapInstance(t, machine.SKU8259CL, 0, 80, Options{})
	plan := res.Planner()
	if pairs := plan.PairsAtOffset(1, 0); len(pairs) == 0 {
		t.Error("planner found no vertical neighbours on a 24-core map")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	_, a := mapInstance(t, machine.SKU8124M, 0, 81, Options{})
	_, b := mapInstance(t, machine.SKU8124M, 1, 82, Options{})
	reg := NewRegistry()
	reg.Store(a)
	reg.Store(b)
	if reg.Len() != 2 {
		t.Fatalf("registry has %d entries, want 2", reg.Len())
	}

	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded.Lookup(a.PPIN)
	if !ok {
		t.Fatal("PPIN lost in round trip")
	}
	if len(got.Pos) != len(a.Pos) {
		t.Fatalf("positions lost in round trip")
	}
	for i := range a.Pos {
		if got.Pos[i] != a.Pos[i] {
			t.Errorf("CHA %d position %v != %v after round trip", i, got.Pos[i], a.Pos[i])
		}
	}
	if got.OSToCHA[3] != a.OSToCHA[3] {
		t.Error("OSToCHA lost in round trip")
	}
}

func TestLoadRegistryRejectsGarbage(t *testing.T) {
	if _, err := LoadRegistry(strings.NewReader("not json")); err == nil {
		t.Error("garbage registry accepted")
	}
}

func TestRegistryReplacesSamePPIN(t *testing.T) {
	_, a := mapInstance(t, machine.SKU8124M, 0, 83, Options{})
	reg := NewRegistry()
	reg.Store(a)
	reg.Store(a)
	if reg.Len() != 1 {
		t.Errorf("duplicate PPIN stored twice")
	}
}

func TestMapMachineSKUDies(t *testing.T) {
	if SkylakeXCCDie.Rows != machine.SKU8259CL.Rows || SkylakeXCCDie.Cols != machine.SKU8259CL.Cols {
		t.Error("SkylakeXCCDie does not match the SKX SKU geometry")
	}
	if IceLakeXCCDie.Rows != machine.SKU6354.Rows || IceLakeXCCDie.Cols != machine.SKU6354.Cols {
		t.Error("IceLakeXCCDie does not match the ICX SKU geometry")
	}
}

// TestProbeSeedDoesNotChangeMap: the recovered physical map must be a
// property of the chip, not of the measurement randomness.
func TestProbeSeedDoesNotChangeMap(t *testing.T) {
	m1 := machine.Generate(machine.SKU8259CL, 1, machine.Config{Seed: 84})
	m2 := machine.Generate(machine.SKU8259CL, 1, machine.Config{Seed: 84})
	r1, err := MapMachine(context.Background(), m1, SkylakeXCCDie, Options{Probe: probe.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MapMachine(context.Background(), m2, SkylakeXCCDie, Options{Probe: probe.Options{Seed: 999}})
	if err != nil {
		t.Fatal(err)
	}
	if !locate.Equivalent(r1.Pos, r2.Pos) {
		t.Error("different probe seeds recovered non-equivalent maps")
	}
}
