package coremap_test

// Godoc examples for the public facade. They run as tests, so the printed
// output is verified.

import (
	"context"
	"fmt"
	"log"

	"coremap"
	"coremap/internal/machine"
	"coremap/internal/probe"
)

// ExampleMapMachine maps a simulated Cascade Lake instance and reads one
// core's physical position off the result.
func ExampleMapMachine() {
	host := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 42})

	res, err := coremap.MapMachine(context.Background(), host, coremap.SkylakeXCCDie, coremap.Options{
		Probe: probe.Options{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cpus:", len(res.OSToCHA))
	fmt.Println("tiles placed:", len(res.Pos))
	coord, _ := res.CPUCoord(0)
	fmt.Println("cpu 0 tile:", coord)
	// Output:
	// cpus: 24
	// tiles placed: 26
	// cpu 0 tile: (2,0)
}

// ExampleRegistry caches a recovered map under the chip's PPIN, the way a
// user-level attacker reuses a map produced once with root access.
func ExampleRegistry() {
	host := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 7})
	res, err := coremap.MapMachine(context.Background(), host, coremap.SkylakeXCCDie, coremap.Options{
		Probe: probe.Options{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	reg := coremap.NewRegistry()
	reg.Store(res)
	cached, ok := reg.Lookup(res.PPIN)
	fmt.Println("cached:", ok, "cpus:", len(cached.OSToCHA))
	// Output:
	// cached: true cpus: 18
}
